"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.gpusim.device import Device


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def device():
    return Device()


def random_graph(
    n: int, p: float, *, directed: bool, seed: int = 0, connected_chain: bool = False
) -> Graph:
    """Small G(n, p)-ish graph for correctness tests (exact enumeration)."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    if connected_chain:
        chain = np.arange(n - 1)
        src = np.concatenate([src, chain])
        dst = np.concatenate([dst, chain + 1])
    return Graph(src, dst, n, directed=directed)


@pytest.fixture
def small_undirected():
    return random_graph(40, 0.08, directed=False, seed=1)


@pytest.fixture
def small_directed():
    return random_graph(40, 0.08, directed=True, seed=2)


@pytest.fixture
def path_graph():
    """0 - 1 - 2 - 3 - 4 undirected path: closed-form BC."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], 5, directed=False)


@pytest.fixture
def diamond_graph():
    """Two equal-length paths 0->1->3 and 0->2->3: sigma splitting."""
    return Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)], 4, directed=True)


def networkx_bc(graph: Graph) -> np.ndarray:
    """Unnormalised networkx betweenness aligned with our conventions."""
    import networkx as nx

    nxg = graph.to_networkx()
    vals = nx.betweenness_centrality(nxg, normalized=False)
    return np.array([vals[i] for i in range(graph.n)])


def assert_bc_close(actual: np.ndarray, expected: np.ndarray, **kw) -> None:
    kw.setdefault("rtol", 1e-9)
    kw.setdefault("atol", 1e-9)
    np.testing.assert_allclose(actual, expected, **kw)
