"""End-to-end TurboBC tests against the Brandes oracle and networkx."""

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.core.bc import turbo_bc
from repro.graphs.graph import Graph
from repro.gpusim.device import Device
from tests.conftest import assert_bc_close, networkx_bc, random_graph

ALGOS = ["sccooc", "sccsc", "veccsc"]


class TestClosedForms:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_path_graph(self, path_graph, algorithm):
        res = turbo_bc(path_graph, algorithm=algorithm)
        # undirected path 0-1-2-3-4: bc = [0, 3, 4, 3, 0]
        assert_bc_close(res.bc, [0, 3, 4, 3, 0])

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_directed_diamond(self, diamond_graph, algorithm):
        res = turbo_bc(diamond_graph, algorithm=algorithm)
        assert_bc_close(res.bc, [0, 0.5, 0.5, 0])

    def test_star_center(self):
        g = Graph([0, 0, 0, 0], [1, 2, 3, 4], 5, directed=False)
        res = turbo_bc(g)
        # all shortest paths between the 4 leaves pass through the hub
        assert_bc_close(res.bc, [6, 0, 0, 0, 0])

    def test_cycle_symmetric(self):
        n = 7
        idx = np.arange(n)
        g = Graph(idx, (idx + 1) % n, n, directed=False)
        res = turbo_bc(g)
        assert np.allclose(res.bc, res.bc[0])

    def test_disconnected_components(self):
        g = Graph([0, 1, 3, 4], [1, 2, 4, 5], 6, directed=False)
        res = turbo_bc(g)
        assert_bc_close(res.bc, [0, 1, 0, 0, 1, 0])

    def test_empty_graph(self):
        g = Graph([], [], 4, directed=False)
        res = turbo_bc(g)
        assert not res.bc.any()

    def test_single_vertex(self):
        g = Graph([], [], 1, directed=True)
        res = turbo_bc(g)
        assert res.bc.tolist() == [0.0]


class TestAgainstOracles:
    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_sources_vs_brandes(self, algorithm, directed, seed):
        g = random_graph(45, 0.07, directed=directed, seed=seed)
        res = turbo_bc(g, algorithm=algorithm, forward_dtype=np.int64,
                       backward_dtype=np.float64)
        assert_bc_close(res.bc, brandes_bc(g), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("directed", [True, False])
    def test_float32_backward_accuracy(self, directed):
        """The paper's float32 dependency vectors stay within single-precision
        accumulation error of the float64 oracle."""
        g = random_graph(45, 0.07, directed=directed, seed=21)
        res = turbo_bc(g, forward_dtype=np.int64)  # default float32 backward
        assert_bc_close(res.bc, brandes_bc(g), rtol=1e-4, atol=1e-3)

    @pytest.mark.parametrize("directed", [True, False])
    def test_vs_networkx(self, directed):
        g = random_graph(35, 0.1, directed=directed, seed=8)
        res = turbo_bc(g, forward_dtype=np.int64, backward_dtype=np.float64)
        assert_bc_close(res.bc, networkx_bc(g), rtol=1e-9, atol=1e-9)

    def test_single_source_subset(self, small_undirected):
        full = turbo_bc(small_undirected, sources=5, forward_dtype=np.int64,
                        backward_dtype=np.float64)
        oracle = brandes_bc(small_undirected, sources=5)
        assert_bc_close(full.bc, oracle, rtol=1e-9, atol=1e-9)

    def test_source_list(self, small_directed):
        res = turbo_bc(small_directed, sources=[0, 3, 7], forward_dtype=np.int64,
                       backward_dtype=np.float64)
        oracle = brandes_bc(small_directed, sources=[0, 3, 7])
        assert_bc_close(res.bc, oracle, rtol=1e-9, atol=1e-9)

    def test_relabelling_invariance(self, rng):
        """BC values permute with the vertices."""
        g = random_graph(40, 0.08, directed=False, seed=13)
        perm = rng.permutation(g.n)
        g2 = Graph(perm[g.src], perm[g.dst], g.n, directed=False)
        bc1 = turbo_bc(g, forward_dtype=np.int64, backward_dtype=np.float64).bc
        bc2 = turbo_bc(g2, forward_dtype=np.int64, backward_dtype=np.float64).bc
        assert_bc_close(bc2[perm], bc1, rtol=1e-9, atol=1e-9)


def asym_digraph() -> Graph:
    """A strongly connected triangle feeding a one-way tail, plus a
    source-only vertex: many ordered pairs are mutually unreachable, so the
    backward stage must accumulate over partial reachability only."""
    e = [(0, 1), (1, 2), (2, 0),      # strongly connected core
         (2, 3), (1, 3),              # one-way bridges out of the core
         (3, 4), (4, 5),              # sink tail: cannot reach anything back
         (6, 0)]                      # source-only vertex (in-degree 0)
    return Graph.from_edges(e, 7, directed=True)


class TestDirectedBackward:
    """The backward (dependency) stage on asymmetric digraphs where
    reachability is one-way: unreachable vertices must contribute nothing,
    and every kernel must agree with Brandes exactly."""

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_asym_digraph_all_sources(self, algorithm):
        g = asym_digraph()
        res = turbo_bc(g, algorithm=algorithm, forward_dtype=np.int64,
                       backward_dtype=np.float64)
        assert_bc_close(res.bc, brandes_bc(g), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("source", [0, 4, 5, 6])
    def test_asym_digraph_single_sources(self, algorithm, source):
        # sources 4 and 5 sit in the sink tail (tiny reachable sets); 6 sees
        # the whole graph; 5's BFS terminates after a single level.
        g = asym_digraph()
        res = turbo_bc(g, sources=source, algorithm=algorithm,
                       forward_dtype=np.int64, backward_dtype=np.float64)
        assert_bc_close(res.bc, brandes_bc(g, sources=source),
                        rtol=1e-9, atol=1e-9)

    def test_sink_source_contributes_nothing(self):
        g = asym_digraph()
        res = turbo_bc(g, sources=5, forward_dtype=np.int64,
                       backward_dtype=np.float64)
        assert not res.bc.any()

    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_random_orientation_vs_brandes(self, algorithm, seed):
        """Random one-way orientations of G(n, p): heavy asymmetry, many
        unreachable (source, target) pairs, frontier dies at odd depths."""
        rng = np.random.default_rng(seed)
        base = random_graph(28, 0.12, directed=False, seed=seed)
        keep = base.src < base.dst
        src, dst = base.src[keep].copy(), base.dst[keep].copy()
        flip = rng.random(src.size) < 0.5
        src[flip], dst[flip] = base.dst[keep][flip], base.src[keep][flip]
        g = Graph(src, dst, base.n, directed=True)
        res = turbo_bc(g, algorithm=algorithm, forward_dtype=np.int64,
                       backward_dtype=np.float64)
        assert_bc_close(res.bc, brandes_bc(g), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_subset_sources_with_unreachable_vertices(self, algorithm):
        g = asym_digraph()
        srcs = [4, 6, 2]
        res = turbo_bc(g, sources=srcs, algorithm=algorithm,
                       forward_dtype=np.int64, backward_dtype=np.float64)
        assert_bc_close(res.bc, brandes_bc(g, sources=srcs),
                        rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_batched_matches_on_asym_digraph(self, algorithm):
        g = asym_digraph()
        seq = turbo_bc(g, algorithm=algorithm)
        bat = turbo_bc(g, algorithm=algorithm, batch_size=4)
        np.testing.assert_array_equal(bat.bc, seq.bc)


class TestDtypePolicy:
    def overflow_graph(self):
        edges = []
        v = 0
        for _ in range(40):
            a, b, c = v + 1, v + 2, v + 3
            edges += [(v, a), (v, b), (a, c), (b, c)]
            v = c
        return Graph.from_edges(edges, v + 1, directed=True)

    def test_auto_falls_back_to_float64(self):
        g = self.overflow_graph()
        res = turbo_bc(g, sources=0)  # default "auto"
        assert_bc_close(res.bc, brandes_bc(g, sources=0), rtol=1e-6, atol=1e-6)

    def test_explicit_int32_raises(self):
        from repro.core.forward import SigmaOverflowError

        with pytest.raises(SigmaOverflowError):
            turbo_bc(self.overflow_graph(), sources=0, forward_dtype=np.int32)

    def test_int32_fine_on_small_graph(self, small_undirected):
        res = turbo_bc(small_undirected, forward_dtype=np.int32)
        assert_bc_close(res.bc, brandes_bc(small_undirected), rtol=1e-5, atol=1e-4)


class TestStatsAndDevice:
    def test_stats_fields(self, small_undirected):
        res = turbo_bc(small_undirected, sources=0, algorithm="sccsc")
        st = res.stats
        assert st.algorithm == "TurboBC-scCSC"
        assert st.n == small_undirected.n
        assert st.m == small_undirected.m
        assert st.sources == 1
        assert st.gpu_time_s > 0
        assert st.kernel_launches > 0
        assert st.mteps() > 0
        assert st.runtime_ms == pytest.approx(st.gpu_time_s * 1e3)

    def test_device_clean_after_run(self, small_undirected):
        device = Device()
        turbo_bc(small_undirected, sources=0, device=device)
        assert device.memory.used_bytes == 0

    def test_peak_memory_tracks_footprint(self, small_undirected):
        res = turbo_bc(small_undirected, sources=0, algorithm="sccsc",
                       forward_dtype=np.int32)
        n, m = small_undirected.n, small_undirected.m
        expected = 4 * (7 * n + 1 + m)  # the paper's 7n + m words
        assert res.stats.peak_memory_bytes == expected

    def test_keep_forward(self, small_undirected):
        res = turbo_bc(small_undirected, sources=2, keep_forward=True)
        assert res.forward is not None
        assert res.forward.source == 2

    def test_unknown_algorithm_rejected(self, small_undirected):
        with pytest.raises(ValueError, match="unknown"):
            turbo_bc(small_undirected, algorithm="nope")

    def test_mteps_conventions(self, small_undirected):
        res = turbo_bc(small_undirected, sources=[0, 1])
        expected = small_undirected.m * 2 / res.stats.gpu_time_s / 1e6
        assert res.stats.mteps() == pytest.approx(expected)

    def test_top_k(self, path_graph):
        res = turbo_bc(path_graph)
        top = res.top(2)
        assert top[0] == (2, 4.0)
        assert len(top) == 2


class TestSelector:
    def test_irregular_picks_veccsc(self):
        from repro.core.bc import select_algorithm
        from repro.graphs.generators import mycielski_graph

        assert select_algorithm(mycielski_graph(13)).name == "veccsc"

    def test_outlier_regular_picks_sccooc(self):
        from repro.core.bc import select_algorithm
        from repro.graphs.generators import traffic_trace_graph

        assert select_algorithm(traffic_trace_graph(30_000, seed=1)).name == "sccooc"

    def test_uniform_regular_picks_sccsc(self):
        from repro.core.bc import select_algorithm
        from repro.graphs.generators import delaunay_graph

        assert select_algorithm(delaunay_graph(10, seed=1)).name == "sccsc"

    def test_scf_can_be_precomputed(self, small_undirected):
        from repro.core.bc import select_algorithm

        assert select_algorithm(small_undirected, scf=10_000).name == "veccsc"

    def test_label(self):
        from repro.core.bc import TurboBCAlgorithm

        assert TurboBCAlgorithm("sccooc").label == "TurboBC-scCOOC"

    def test_invalid_name(self):
        from repro.core.bc import TurboBCAlgorithm

        with pytest.raises(ValueError):
            TurboBCAlgorithm("csr")
