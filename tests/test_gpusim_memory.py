"""Device-memory allocator tests."""

import numpy as np
import pytest

from repro.gpusim.errors import (
    DeviceArrayFreedError,
    DeviceOutOfMemoryError,
    GpuSimError,
)
from repro.gpusim.memory import DeviceMemory, PCIE_BANDWIDTH_GBS


class TestAlloc:
    def test_backed_allocation_is_zeroed(self):
        mem = DeviceMemory(1 << 20)
        arr = mem.alloc("x", 10, np.int32)
        assert arr.data.sum() == 0
        assert arr.nbytes == 40

    def test_usage_accounting(self):
        mem = DeviceMemory(1 << 20)
        mem.alloc("a", 100, np.int32)
        mem.alloc("b", 50, np.float64)
        assert mem.used_bytes == 400 + 400
        assert mem.peak_bytes == 800

    def test_oom_raises_and_allocates_nothing(self):
        mem = DeviceMemory(100)
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            mem.alloc("big", 1000, np.int32)
        assert mem.used_bytes == 0
        assert exc.value.requested == 4000
        assert exc.value.capacity == 100

    def test_exact_fit_allowed(self):
        mem = DeviceMemory(400)
        mem.alloc("x", 100, np.int32)
        assert mem.used_bytes == 400

    def test_free_restores_capacity(self):
        mem = DeviceMemory(400)
        arr = mem.alloc("x", 100, np.int32)
        mem.free(arr)
        mem.alloc("y", 100, np.int32)  # fits again

    def test_double_free_raises(self):
        mem = DeviceMemory(1 << 20)
        arr = mem.alloc("x", 10, np.int32)
        mem.free(arr)
        with pytest.raises(GpuSimError, match="already-freed"):
            mem.free(arr)

    def test_freed_data_access_raises(self):
        mem = DeviceMemory(1 << 20)
        arr = mem.alloc("x", 10, np.int32)
        mem.free(arr)
        with pytest.raises(DeviceArrayFreedError):
            arr.data

    def test_peak_survives_free(self):
        mem = DeviceMemory(1 << 20)
        arr = mem.alloc("x", 1000, np.int32)
        mem.free(arr)
        assert mem.used_bytes == 0
        assert mem.peak_bytes == 4000

    def test_free_all(self):
        mem = DeviceMemory(1 << 20)
        mem.alloc("a", 10, np.int32)
        mem.alloc("b", 10, np.int32)
        mem.free_all()
        assert mem.used_bytes == 0
        assert not mem.live_arrays

    def test_2d_shapes(self):
        mem = DeviceMemory(1 << 20)
        arr = mem.alloc("x", (4, 5), np.float32)
        assert arr.nbytes == 80
        assert arr.data.shape == (4, 5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)


class TestPlannedMode:
    def test_planned_has_no_data(self):
        mem = DeviceMemory(1 << 30, backed=False)
        arr = mem.alloc("x", 1000, np.int32)
        assert not arr.is_backed
        with pytest.raises(GpuSimError, match="planned"):
            arr.data

    def test_planned_oom_still_enforced(self):
        mem = DeviceMemory(100, backed=False)
        with pytest.raises(DeviceOutOfMemoryError):
            mem.alloc("x", 10**9, np.int32)

    def test_planned_paper_scale_is_cheap(self):
        """sk-2005-scale allocation must not allocate real memory."""
        mem = DeviceMemory(12196 * 2**20, backed=False)
        mem.alloc("row_A", 1_950_000_000, np.int32)  # 7.8 GB planned
        assert mem.used_bytes == 7_800_000_000


class TestTransfers:
    def test_h2d_copies(self):
        mem = DeviceMemory(1 << 20)
        host = np.arange(10, dtype=np.int32)
        arr = mem.h2d("x", host)
        assert np.array_equal(arr.data, host)
        host[0] = 99
        assert arr.data[0] == 0  # independent copy

    def test_d2h_copies(self):
        mem = DeviceMemory(1 << 20)
        arr = mem.h2d("x", np.arange(10, dtype=np.int32))
        out = mem.d2h(arr)
        out[0] = 99
        assert arr.data[0] == 0

    def test_transfer_accounting(self):
        mem = DeviceMemory(1 << 20)
        arr = mem.h2d("x", np.zeros(100, dtype=np.int32))
        mem.d2h(arr)
        assert mem.transfer_bytes_h2d == 400
        assert mem.transfer_bytes_d2h == 400
        expected = 800 / (PCIE_BANDWIDTH_GBS * 1e9)
        assert mem.transfer_time_s() == pytest.approx(expected)

    def test_usage_report_lists_arrays(self):
        mem = DeviceMemory(1 << 20)
        mem.alloc("weights", 100, np.float32)
        report = mem.usage_report()
        assert "weights" in report and "MiB" in report
