"""Batched (SpMM) driver: parity with the sequential driver, overflow
re-runs, auto batch sizing, memory admission and source validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bc import _resolve_sources, turbo_bc
from repro.core.forward import SigmaOverflowError
from repro.core.multigpu import multi_gpu_bc
from repro.core.approx import approximate_bc
from repro.graphs.graph import Graph
from repro.gpusim.device import Device, DeviceSpec
from repro.gpusim.errors import DeviceOutOfMemoryError
from repro.perf.memory_model import turbobc_batched_footprint_words

from tests.conftest import assert_bc_close, random_graph

BATCHES = (2, 8, 32)


class TestBatchedParity:
    """batch_size=B must reproduce the sequential driver within 1e-9 (the
    kernels are in fact bit-exact; the tests assert the documented bound)."""

    @pytest.mark.parametrize("directed", (False, True))
    @pytest.mark.parametrize("algorithm", ("sccooc", "sccsc", "veccsc"))
    @pytest.mark.parametrize("batch", BATCHES)
    def test_matches_sequential(self, directed, algorithm, batch):
        g = random_graph(60, 0.05, directed=directed, seed=7)
        seq = turbo_bc(g, algorithm=algorithm)
        bat = turbo_bc(g, algorithm=algorithm, batch_size=batch)
        assert_bc_close(bat.bc, seq.bc)
        assert bat.stats.depth_per_source == seq.stats.depth_per_source
        assert bat.stats.batch_size == min(batch, g.n)

    def test_batch_not_dividing_source_count(self):
        g = random_graph(50, 0.06, directed=True, seed=3)
        srcs = list(range(0, 50, 2))  # 25 sources, B = 8 -> chunks 8,8,8,1
        seq = turbo_bc(g, sources=srcs)
        bat = turbo_bc(g, sources=srcs, batch_size=8)
        assert_bc_close(bat.bc, seq.bc)

    @pytest.mark.parametrize("name,n_sources", [
        ("mycielskian15", 6),   # undirected, veccsc-classified
        ("mark3jac060sc", 6),   # directed, sccsc-classified
    ])
    def test_suite_graphs(self, name, n_sources):
        from repro.graphs import suite

        g = suite.get(name).build()
        srcs = list(range(n_sources))
        seq = turbo_bc(g, sources=srcs)
        for batch in (2, 4):
            bat = turbo_bc(g, sources=srcs, batch_size=batch)
            assert_bc_close(bat.bc, seq.bc)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        directed=st.booleans(),
        batch=st.integers(2, 16),
    )
    def test_property_random_graphs(self, seed, directed, batch):
        g = random_graph(30, 0.1, directed=directed, seed=seed)
        seq = turbo_bc(g, algorithm="sccsc")
        bat = turbo_bc(g, algorithm="sccsc", batch_size=batch)
        assert_bc_close(bat.bc, seq.bc)

    def test_keep_forward_last_source(self):
        g = random_graph(40, 0.08, directed=True, seed=5)
        srcs = [3, 9, 17, 25, 33]
        seq = turbo_bc(g, sources=srcs, keep_forward=True)
        bat = turbo_bc(g, sources=srcs, batch_size=2, keep_forward=True)
        assert bat.forward is not None
        assert bat.forward.source == srcs[-1]
        np.testing.assert_array_equal(bat.forward.sigma, seq.forward.sigma)
        np.testing.assert_array_equal(bat.forward.levels, seq.forward.levels)


class TestBatchedBitIdentity:
    """The SpMM path is *bit-identical* (np.array_equal, not allclose) to B
    independent single-source runs accumulated in source order.  Both sides
    run the backward stage in float64 so accumulation order is the only
    possible source of drift -- and the masked SpMM lanes perform exactly
    the per-source arithmetic, so there is none."""

    @pytest.mark.parametrize("seed", range(50))
    def test_fifty_seeded_random_graphs(self, seed):
        algorithm = ("sccooc", "sccsc", "veccsc")[seed % 3]
        rng = np.random.default_rng(seed)
        n = int(rng.integers(12, 28))
        g = random_graph(n, 0.12, directed=bool(seed % 2), seed=seed + 1000)
        k = int(rng.integers(2, 7))
        srcs = sorted(rng.choice(n, size=k, replace=False).tolist())
        batch = len(srcs) if seed % 5 else "auto"
        bat = turbo_bc(g, sources=srcs, algorithm=algorithm, batch_size=batch,
                       backward_dtype=np.float64)
        lanes = np.zeros(g.n)
        for s in srcs:
            lanes += turbo_bc(g, sources=[s], algorithm=algorithm,
                              backward_dtype=np.float64).bc
        np.testing.assert_array_equal(bat.bc, lanes)

    def test_lane_identity_survives_partial_batches(self):
        # 7 sources through B=3: chunks of 3, 3, 1.
        g = random_graph(24, 0.1, directed=True, seed=77)
        srcs = [0, 3, 5, 9, 14, 18, 23]
        bat = turbo_bc(g, sources=srcs, batch_size=3,
                       backward_dtype=np.float64)
        lanes = np.zeros(g.n)
        for s in srcs:
            lanes += turbo_bc(g, sources=[s], backward_dtype=np.float64).bc
        np.testing.assert_array_equal(bat.bc, lanes)

    def test_segment_sums_follow_bincount_order(self):
        """Regression: the batched segment sum must round exactly like the
        sequential ``np.bincount`` accumulation.  ``np.add.reduceat`` does
        not (its float64 loop goes pairwise past a few entries), which once
        made SpMM lanes drift ULPs from SpMV on columns of degree >= ~7."""
        from repro.spmv._spmm import segment_sums

        rng = np.random.default_rng(3)
        seg_ptr = np.array([0, 1, 1, 9, 40, 40, 73])
        vals = rng.uniform(0.1, 3.0, size=(seg_ptr[-1], 4))
        sums = segment_sums(vals, seg_ptr, seg_ptr.size - 1)
        seg_of_entry = np.repeat(np.arange(seg_ptr.size - 1), np.diff(seg_ptr))
        for j in range(vals.shape[1]):
            want = np.bincount(seg_of_entry, weights=vals[:, j],
                               minlength=seg_ptr.size - 1)
            np.testing.assert_array_equal(sums[:, j], want)

    def test_batched_float32_matches_sequential_float32(self):
        """At the default float32 backward dtype the batched driver is still
        bit-identical to the sequential driver (same device accumulation
        order), even though both differ from a float64 host sum."""
        for seed in (0, 1, 2):
            g = random_graph(30, 0.1, directed=bool(seed % 2), seed=seed)
            seq = turbo_bc(g, algorithm="sccsc")
            bat = turbo_bc(g, algorithm="sccsc", batch_size=8)
            np.testing.assert_array_equal(bat.bc, seq.bc)


def overflow_graph() -> Graph:
    """40 chained diamonds: sigma from vertex 0 is 2^40, overflowing int32."""
    edges = []
    v = 0
    for _ in range(40):
        a, b, c = v + 1, v + 2, v + 3
        edges += [(v, a), (v, b), (a, c), (b, c)]
        v = c
    return Graph.from_edges(edges, v + 1, directed=True)


class TestBatchedOverflow:
    def test_reruns_only_overflowed_sources(self):
        from repro.baselines.brandes import brandes_bc

        g = overflow_graph()
        srcs = [0, 115, 118]  # 0 overflows int32; the late sources don't
        res = turbo_bc(g, sources=srcs, batch_size=3)
        assert res.stats.rerun_sources == [0]
        assert res.stats.batch_size == 3
        assert_bc_close(res.bc, brandes_bc(g, sources=srcs), rtol=1e-6, atol=1e-6)

    def test_rerun_matches_sequential_auto(self):
        g = overflow_graph()
        srcs = [0, 115, 118]
        bat = turbo_bc(g, sources=srcs, batch_size=3)
        seq = turbo_bc(g, sources=srcs)
        assert_bc_close(bat.bc, seq.bc)
        assert bat.stats.depth_per_source == seq.stats.depth_per_source

    def test_explicit_int_dtype_raises(self):
        g = overflow_graph()
        with pytest.raises(SigmaOverflowError):
            turbo_bc(g, sources=[0, 115], batch_size=2, forward_dtype=np.int32)

    def test_device_clean_after_rerun(self):
        device = Device()
        turbo_bc(overflow_graph(), sources=[0, 115], batch_size=2, device=device)
        assert device.memory.used_bytes == 0


class TestAutoBatchAndMemory:
    def test_auto_batch_runs_and_matches(self, small_directed):
        res = turbo_bc(small_directed, batch_size="auto")
        seq = turbo_bc(small_directed)
        assert res.stats.batch_size >= 1
        assert_bc_close(res.bc, seq.bc)

    def test_auto_batch_caps_at_64(self, small_undirected):
        # plenty of memory for this tiny graph -> the cap binds
        res = turbo_bc(small_undirected, batch_size="auto")
        assert res.stats.batch_size <= 64

    def test_auto_batch_shrinks_on_small_device(self):
        g = random_graph(200, 0.03, directed=True, seed=9)
        big = turbo_bc(g, batch_size="auto").stats.batch_size
        # a device barely larger than the B=2 footprint forces a small batch
        words = turbobc_batched_footprint_words(g.n, g.m, 3)
        small_dev = Device(DeviceSpec(name="tiny", global_memory_bytes=words * 4))
        small = turbo_bc(g, batch_size="auto", device=small_dev).stats.batch_size
        assert small < big
        assert small >= 1

    def test_oversized_explicit_batch_rejected(self):
        g = random_graph(200, 0.03, directed=True, seed=9)
        words = turbobc_batched_footprint_words(g.n, g.m, 2)
        tiny = Device(DeviceSpec(name="tiny", global_memory_bytes=words * 4))
        with pytest.raises(DeviceOutOfMemoryError):
            turbo_bc(g, batch_size=64, device=tiny)

    def test_peak_memory_matches_footprint_model(self):
        g = random_graph(300, 0.02, directed=True, seed=4)
        batch = 8
        device = Device()
        turbo_bc(g, batch_size=batch, device=device, algorithm="sccsc",
                 forward_dtype=np.int32)
        expected = turbobc_batched_footprint_words(g.n, g.m, batch, "csc") * 4
        assert device.memory.peak_bytes == expected

    def test_batch_size_one_keeps_sequential_footprint(self):
        from repro.perf.memory_model import turbobc_footprint_words

        assert turbobc_batched_footprint_words(5, 7, 1, "csc") == (
            turbobc_footprint_words(5, 7, "csc")
        )
        assert turbobc_batched_footprint_words(5, 7, 1, "cooc") == (
            turbobc_footprint_words(5, 7, "cooc")
        )


class TestSourceValidation:
    def test_out_of_range_rejected(self, small_directed):
        with pytest.raises(ValueError, match="out of range"):
            turbo_bc(small_directed, sources=[0, 40])
        with pytest.raises(ValueError, match="out of range"):
            turbo_bc(small_directed, sources=-1)

    def test_duplicates_rejected(self, small_directed):
        with pytest.raises(ValueError, match="duplicate"):
            turbo_bc(small_directed, sources=[1, 2, 1])

    def test_resolve_sources_helper(self, small_directed):
        assert _resolve_sources(small_directed, None) == list(range(40))
        assert _resolve_sources(small_directed, 5) == [5]
        assert _resolve_sources(small_directed, [3, 1]) == [3, 1]

    def test_bad_batch_size_rejected(self, small_directed):
        with pytest.raises(ValueError, match="batch_size"):
            turbo_bc(small_directed, batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            turbo_bc(small_directed, batch_size="huge")


class TestBatchedWiring:
    def test_approximate_bc_batched(self):
        g = random_graph(60, 0.06, directed=False, seed=8)
        seq = approximate_bc(g, 16, seed=1)
        bat = approximate_bc(g, 16, seed=1, batch_size=8)
        assert_bc_close(bat.bc, seq.bc)

    def test_multi_gpu_batched(self):
        # batch_size sets the task granularity, i.e. how many sources share
        # one float32 device accumulator before the host's float64 fold --
        # so different batches agree to accumulation order (same tolerance
        # as multi-device vs single-device); bit-identity is only promised
        # across device counts/schedulers at a fixed batch (test_multigpu).
        g = random_graph(60, 0.06, directed=True, seed=8)
        seq, _ = multi_gpu_bc(g, n_devices=2)
        bat, _ = multi_gpu_bc(g, n_devices=2, batch_size=8)
        assert_bc_close(bat.bc, seq.bc, rtol=1e-6, atol=1e-6)

    def test_cli_batch_size(self, tmp_path, capsys):
        from repro.cli import main

        g = random_graph(30, 0.1, directed=False, seed=2)
        path = tmp_path / "g.el"
        with open(path, "w") as fh:
            for u, v in zip(g.src, g.dst):
                fh.write(f"{u} {v}\n")
        assert main(["bc", str(path), "--batch-size", "8", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "batch=8" in out
