"""Tests for the validation module and the analytics helpers."""

import numpy as np
import pytest

from repro.analysis import (
    gini_coefficient,
    normalize_bc,
    spearman_rank_correlation,
    top_k,
    top_k_overlap,
)
from repro.core.bc import turbo_bc
from repro.core.bfs import turbo_bfs
from repro.core.validate import validate_bc, validate_bfs
from repro.graphs.graph import Graph
from tests.conftest import random_graph


class TestValidateBFS:
    @pytest.mark.parametrize("directed", [True, False])
    def test_accepts_correct_result(self, directed):
        g = random_graph(50, 0.07, directed=directed, seed=4)
        res = turbo_bfs(g, 0, forward_dtype=np.int64)
        report = validate_bfs(g, res)
        assert report.ok, report.errors

    def test_detects_corrupted_sigma(self, small_undirected):
        res = turbo_bfs(small_undirected, 0, forward_dtype=np.int64)
        reached = np.flatnonzero(res.sigma > 0)
        victim = int(reached[-1])
        if victim == 0:
            pytest.skip("graph too small")
        res.sigma[victim] += 5
        report = validate_bfs(small_undirected, res)
        assert not report.ok
        assert any("sigma mismatch" in e for e in report.errors)

    def test_detects_level_skip(self, small_undirected):
        res = turbo_bfs(small_undirected, 0, forward_dtype=np.int64)
        deep = np.flatnonzero((res.sigma > 0) & (res.levels >= 1))
        if deep.size == 0:
            pytest.skip("no depth")
        res.levels[int(deep[-1])] += 5
        report = validate_bfs(small_undirected, res)
        assert not report.ok

    def test_detects_wrong_source_sigma(self, small_undirected):
        res = turbo_bfs(small_undirected, 0, forward_dtype=np.int64)
        res.sigma[0] = 3
        report = validate_bfs(small_undirected, res)
        assert not report.ok
        assert any("source" in e for e in report.errors)

    def test_detects_unreached_leak(self):
        g = Graph([0, 1], [1, 2], 4, directed=True)
        res = turbo_bfs(g, 0, forward_dtype=np.int64)
        res.sigma[2] = 0  # pretend 2 was never reached
        report = validate_bfs(g, res)
        assert not report.ok

    def test_raise_if_failed(self, small_undirected):
        res = turbo_bfs(small_undirected, 0, forward_dtype=np.int64)
        res.sigma[0] = 99
        with pytest.raises(AssertionError, match="validation failed"):
            validate_bfs(small_undirected, res).raise_if_failed()


class TestValidateBC:
    def test_accepts_correct_bc(self, small_undirected):
        res = turbo_bc(small_undirected, forward_dtype=np.int64,
                       backward_dtype=np.float64)
        report = validate_bc(small_undirected, res.bc, check_conservation=True)
        assert report.ok, report.errors

    def test_detects_negative(self, small_undirected):
        bc = np.zeros(small_undirected.n)
        bc[3] = -1.0
        assert not validate_bc(small_undirected, bc).ok

    def test_detects_conservation_violation(self, small_undirected):
        res = turbo_bc(small_undirected, forward_dtype=np.int64)
        bc = res.bc.copy()
        hub = int(np.argmax(bc))
        bc[hub] *= 2
        report = validate_bc(small_undirected, bc, check_conservation=True)
        assert not report.ok

    def test_detects_shape_mismatch(self, small_undirected):
        assert not validate_bc(small_undirected, np.zeros(3)).ok

    def test_detects_leaf_with_bc(self):
        g = Graph([0, 1], [1, 2], 3, directed=False)  # path: 0 and 2 are leaves
        bc = np.array([5.0, 1.0, 0.0])
        assert not validate_bc(g, bc).ok


class TestNormalize:
    def test_matches_networkx(self, small_undirected):
        import networkx as nx

        res = turbo_bc(small_undirected, forward_dtype=np.int64,
                       backward_dtype=np.float64)
        norm = normalize_bc(res.bc, small_undirected.n, directed=False)
        expected = nx.betweenness_centrality(
            small_undirected.to_networkx(), normalized=True
        )
        np.testing.assert_allclose(
            norm, [expected[i] for i in range(small_undirected.n)], atol=1e-9
        )

    def test_tiny_graph(self):
        assert normalize_bc(np.zeros(2), 2, directed=True).tolist() == [0, 0]

    def test_directed_scale_differs(self):
        bc = np.ones(5)
        u = normalize_bc(bc, 5, directed=False)
        d = normalize_bc(bc, 5, directed=True)
        np.testing.assert_allclose(u, 2 * d)


class TestRankings:
    def test_top_k_order(self):
        v = np.array([1.0, 9.0, 3.0, 9.0])
        assert top_k(v, 3).tolist() == [1, 3, 2]  # ties by index

    def test_top_k_bounds(self):
        assert top_k(np.array([1.0]), 5).tolist() == [0]
        assert top_k(np.array([1.0]), 0).size == 0

    def test_overlap_identical(self):
        v = np.arange(10.0)
        assert top_k_overlap(v, v, 3) == 1.0

    def test_overlap_disjoint(self):
        a = np.array([1.0, 0, 0, 0])
        b = np.array([0.0, 0, 0, 1])
        assert top_k_overlap(a, b, 1) == 0.0

    def test_spearman_perfect(self):
        a = np.array([1.0, 2, 3, 4])
        assert spearman_rank_correlation(a, 10 * a) == pytest.approx(1.0)

    def test_spearman_reversed(self):
        a = np.array([1.0, 2, 3, 4])
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_spearman_shape_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.ones(3), np.ones(4))


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_single_hub_near_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini_coefficient(v) > 0.99

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_road_vs_social_concentration(self):
        """BC mass is more concentrated on a hub graph than on a path."""
        from repro.graphs.generators import traffic_trace_graph
        from repro.baselines.brandes import brandes_bc

        idx = np.arange(99)
        path = Graph(idx, idx + 1, 100, directed=False)
        hub = traffic_trace_graph(100, seed=1)
        g_path = gini_coefficient(brandes_bc(path))
        g_hub = gini_coefficient(brandes_bc(hub))
        assert g_hub > g_path


class TestSubgraph:
    def test_induced_edges(self):
        g = Graph([0, 1, 2, 3], [1, 2, 3, 0], 5, directed=True)
        sub, mapping = g.subgraph([1, 2, 3])
        assert mapping.tolist() == [1, 2, 3]
        assert sub.m == 2  # 1->2, 2->3 survive; 3->0 and 0->1 cut

    def test_bc_on_component_matches(self):
        g = random_graph(40, 0.08, directed=False, seed=9)
        from repro.baselines.brandes import brandes_bc
        from repro.graphs.traversal import bfs_sigma_levels

        sigma, _, _, _ = bfs_sigma_levels(g, 0)
        comp = np.flatnonzero(sigma > 0)
        sub, mapping = g.subgraph(comp)
        bc_full = brandes_bc(g)
        bc_sub = brandes_bc(sub)
        np.testing.assert_allclose(bc_sub, bc_full[mapping], atol=1e-9)

    def test_out_of_range(self):
        g = Graph([0], [1], 2, directed=True)
        with pytest.raises(ValueError):
            g.subgraph([0, 7])
