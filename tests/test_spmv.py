"""SpMV kernel tests: every kernel against the reference oracle."""

import numpy as np
import pytest

from repro.gpusim.device import Device
from repro.spmv import (
    reference_spmv,
    reference_spmv_scatter,
    sccooc_spmv,
    sccooc_spmv_scatter,
    sccsc_spmv,
    sccsc_spmv_scatter,
    veccsc_spmv,
    veccsc_spmv_scatter,
)
from tests.conftest import random_graph

GATHER_KERNELS = {
    "sccooc": lambda dev, g, x, **kw: sccooc_spmv(dev, g.to_cooc(), x, **kw),
    "sccsc": lambda dev, g, x, **kw: sccsc_spmv(dev, g.to_csc(), x, **kw),
    "veccsc": lambda dev, g, x, **kw: veccsc_spmv(dev, g.to_csc(), x, **kw),
}
SCATTER_KERNELS = {
    "sccooc": lambda dev, g, x, **kw: sccooc_spmv_scatter(dev, g.to_cooc(), x, **kw),
    "sccsc": lambda dev, g, x, **kw: sccsc_spmv_scatter(dev, g.to_csc(), x, **kw),
    "veccsc": lambda dev, g, x, **kw: veccsc_spmv_scatter(dev, g.to_csc(), x, **kw),
}


@pytest.fixture
def graph():
    return random_graph(120, 0.04, directed=True, seed=11)


@pytest.fixture
def x_int(graph, rng):
    return rng.integers(0, 4, graph.n).astype(np.int32)


@pytest.fixture
def x_float(graph, rng):
    return (rng.random(graph.n) * (rng.random(graph.n) < 0.5)).astype(np.float32)


class TestGatherKernels:
    @pytest.mark.parametrize("name", GATHER_KERNELS)
    def test_matches_reference_int(self, name, graph, x_int, device):
        y, _ = GATHER_KERNELS[name](device, graph, x_int)
        np.testing.assert_array_equal(y, reference_spmv(graph.to_csc(), x_int))

    @pytest.mark.parametrize("name", GATHER_KERNELS)
    def test_matches_reference_float(self, name, graph, x_float, device):
        y, _ = GATHER_KERNELS[name](device, graph, x_float)
        np.testing.assert_allclose(
            y, reference_spmv(graph.to_csc(), x_float.astype(np.float64)), rtol=1e-6
        )

    @pytest.mark.parametrize("name", GATHER_KERNELS)
    def test_zero_vector(self, name, graph, device):
        x = np.zeros(graph.n, dtype=np.int32)
        y, _ = GATHER_KERNELS[name](device, graph, x)
        assert not y.any()

    @pytest.mark.parametrize("name", GATHER_KERNELS)
    def test_rejects_wrong_shape(self, name, graph, device):
        with pytest.raises(ValueError, match="shape"):
            GATHER_KERNELS[name](device, graph, np.zeros(graph.n + 1, dtype=np.int32))

    @pytest.mark.parametrize("name", ["sccsc", "veccsc"])
    def test_mask_zeroes_disallowed_columns(self, name, graph, x_int, device, rng):
        allowed = rng.random(graph.n) < 0.4
        y, _ = GATHER_KERNELS[name](device, graph, x_int, allowed=allowed)
        full = reference_spmv(graph.to_csc(), x_int)
        np.testing.assert_array_equal(y, np.where(allowed, full, 0))

    @pytest.mark.parametrize("name", ["sccsc", "veccsc"])
    def test_mask_must_be_bool(self, name, graph, x_int, device):
        with pytest.raises(ValueError, match="boolean"):
            GATHER_KERNELS[name](device, graph, x_int, allowed=np.ones(graph.n))

    @pytest.mark.parametrize("name", GATHER_KERNELS)
    def test_out_dtype_override(self, name, graph, x_int, device):
        y, _ = GATHER_KERNELS[name](device, graph, x_int, out_dtype=np.float32)
        assert y.dtype == np.float32


class TestScatterKernels:
    @pytest.mark.parametrize("name", SCATTER_KERNELS)
    def test_matches_reference(self, name, graph, x_int, device):
        y, _ = SCATTER_KERNELS[name](device, graph, x_int)
        np.testing.assert_array_equal(y, reference_spmv_scatter(graph.to_csc(), x_int))

    @pytest.mark.parametrize("name", SCATTER_KERNELS)
    def test_scatter_is_gather_of_transpose(self, name, graph, x_int, device):
        y, _ = SCATTER_KERNELS[name](device, graph, x_int)
        yt = reference_spmv(graph.reverse().to_csc(), x_int)
        np.testing.assert_array_equal(y, yt)

    @pytest.mark.parametrize("name", SCATTER_KERNELS)
    def test_rejects_wrong_shape(self, name, graph, device):
        with pytest.raises(ValueError, match="shape"):
            SCATTER_KERNELS[name](device, graph, np.zeros(graph.n - 1, dtype=np.int32))


class TestKernelStats:
    def test_launch_recorded(self, graph, x_int):
        dev = Device()
        _, launch = sccsc_spmv(dev, graph.to_csc(), x_int)
        assert dev.profiler.total_launches() == 1
        assert launch.stats.name == "sccsc_spmv"

    def test_sccooc_threads_equal_edges(self, graph, x_int, device):
        _, launch = sccooc_spmv(device, graph.to_cooc(), x_int)
        assert launch.stats.threads == graph.m

    def test_sccsc_threads_equal_vertices(self, graph, x_int, device):
        _, launch = sccsc_spmv(device, graph.to_csc(), x_int)
        assert launch.stats.threads == graph.n

    def test_veccsc_threads_are_warp_per_column(self, graph, x_int, device):
        _, launch = veccsc_spmv(device, graph.to_csc(), x_int)
        assert launch.stats.threads == 32 * graph.n

    def test_mask_reduces_work(self, graph, x_int, device):
        _, full = sccsc_spmv(device, graph.to_csc(), x_int)
        allowed = np.zeros(graph.n, dtype=bool)
        _, masked = sccsc_spmv(device, graph.to_csc(), x_int, allowed=allowed)
        assert masked.stats.dram_bytes < full.stats.dram_bytes
        assert masked.stats.warp_cycles < full.stats.warp_cycles

    def test_divergence_hurts_sccsc_not_veccsc(self, device, rng):
        """A degree-skewed graph must cost scCSC more warp cycles per edge
        than veCSC -- the paper's central kernel-selection argument."""
        # one high-degree column per warp of otherwise tiny columns: each
        # scCSC warp stalls on its hub lane while veCSC streams them.
        n = 2048
        hubs = np.arange(0, n, 32)
        hub_src = np.concatenate([rng.choice(n, 900, replace=False) for _ in hubs])
        hub_dst = np.repeat(hubs, 900)
        chain = np.arange(n - 1)
        src = np.concatenate([hub_src, chain])
        dst = np.concatenate([hub_dst, chain + 1])
        from repro.graphs.graph import Graph

        g = Graph(src, dst, n, directed=True)
        x = np.ones(n, dtype=np.int32)
        _, sc = sccsc_spmv(device, g.to_csc(), x)
        _, ve = veccsc_spmv(device, g.to_csc(), x)
        assert sc.stats.warp_cycles > 2 * ve.stats.warp_cycles

    def test_empty_graph_kernels(self, device):
        from repro.graphs.graph import Graph

        g = Graph([], [], 8, directed=True)
        x = np.ones(8, dtype=np.int32)
        for name, k in {**GATHER_KERNELS, **SCATTER_KERNELS}.items():
            y, _ = k(device, g, x)
            assert not y.any(), name
