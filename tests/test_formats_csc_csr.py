"""CSC and CSR format tests."""

import numpy as np
import pytest

from repro.formats import CSCMatrix, CSRMatrix


class TestCSCMatrix:
    def make(self):
        # 3x3: entries (1,0), (0,1), (2,1)
        return CSCMatrix([0, 1, 3, 3], [1, 0, 2], (3, 3))

    def test_dense(self):
        assert self.make().to_dense().tolist() == [[0, 1, 0], [1, 0, 0], [0, 1, 0]]

    def test_column_view(self):
        mat = self.make()
        assert mat.column(0).tolist() == [1]
        assert mat.column(1).tolist() == [0, 2]
        assert mat.column(2).tolist() == []

    def test_column_counts(self):
        assert self.make().column_counts().tolist() == [1, 2, 0]

    def test_column_of_nnz(self):
        assert self.make().column_of_nnz().tolist() == [0, 1, 1]

    def test_column_of_nnz_cached(self):
        mat = self.make()
        assert mat.column_of_nnz() is mat.column_of_nnz()

    def test_memory_words(self):
        assert self.make().memory_words == 3 + 1 + 3

    def test_scipy_roundtrip(self):
        mat = self.make()
        back = CSCMatrix.from_scipy(mat.to_scipy())
        assert np.array_equal(back.to_dense(), mat.to_dense())

    def test_from_scipy_collapses_duplicates(self):
        from scipy.sparse import coo_array

        sp = coo_array((np.ones(3), ([0, 0, 1], [1, 1, 0])), shape=(2, 2))
        mat = CSCMatrix.from_scipy(sp)
        assert mat.nnz == 2

    def test_rejects_bad_ptr_length(self):
        with pytest.raises(ValueError, match="col_ptr must have length"):
            CSCMatrix([0, 1], [0], (3, 3))

    def test_rejects_nonzero_start(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSCMatrix([1, 1, 1, 1], [], (3, 3))

    def test_rejects_wrong_end(self):
        with pytest.raises(ValueError, match="end at nnz"):
            CSCMatrix([0, 1, 1, 5], [0], (3, 3))

    def test_rejects_decreasing_ptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSCMatrix([0, 2, 1, 3], [0, 1, 2], (3, 3))

    def test_rejects_row_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSCMatrix([0, 1, 1, 1], [7], (3, 3))

    def test_rejects_unsorted_rows_within_column(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSCMatrix([0, 2, 2, 2], [2, 1], (3, 3))

    def test_rows_may_reset_at_column_boundary(self):
        CSCMatrix([0, 2, 4, 4], [0, 1, 0, 1], (3, 3))  # no exception

    def test_empty(self):
        mat = CSCMatrix([0, 0, 0, 0], [], (3, 3))
        assert mat.nnz == 0
        assert mat.column_of_nnz().size == 0


class TestCSRMatrix:
    def make(self):
        return CSRMatrix([0, 1, 3, 3], [1, 0, 2], (3, 3))

    def test_dense(self):
        assert self.make().to_dense().tolist() == [[0, 1, 0], [1, 0, 1], [0, 0, 0]]

    def test_neighbors(self):
        mat = self.make()
        assert mat.neighbors(1).tolist() == [0, 2]
        assert mat.neighbors(2).tolist() == []

    def test_row_counts(self):
        assert self.make().row_counts().tolist() == [1, 2, 0]

    def test_row_of_nnz(self):
        assert self.make().row_of_nnz().tolist() == [0, 1, 1]

    def test_memory_words(self):
        assert self.make().memory_words == 3 + 1 + 3

    def test_scipy_roundtrip(self):
        mat = self.make()
        back = CSRMatrix.from_scipy(mat.to_scipy())
        assert np.array_equal(back.to_dense(), mat.to_dense())

    def test_rejects_bad_ptr(self):
        with pytest.raises(ValueError, match="row_ptr must have length"):
            CSRMatrix([0, 1], [0], (3, 3))

    def test_rejects_unsorted_cols(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSRMatrix([0, 2, 2, 2], [2, 1], (3, 3))

    def test_csr_csc_transpose_relation(self):
        """CSR of A and CSC of A store the same matrix, different order."""
        from repro.formats.convert import csc_to_csr, edges_to_csc

        src = [0, 0, 1, 3, 2]
        dst = [1, 2, 3, 0, 1]
        csc = edges_to_csc(src, dst, 4)
        csr = csc_to_csr(csc)
        assert np.array_equal(csr.to_dense(), csc.to_dense())
