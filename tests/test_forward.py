"""Forward (BFS) stage tests: sigma counts, levels, depth, dtype policy."""

import numpy as np
import pytest

from repro.core.context import TurboBCContext
from repro.core.forward import SigmaOverflowError, bfs_forward
from repro.core.bfs import turbo_bfs
from repro.graphs.graph import Graph
from repro.gpusim.device import Device
from tests.conftest import random_graph


def run_forward(graph, source, algorithm="sccsc", dtype=np.int64):
    device = Device()
    ctx = TurboBCContext(device, graph, algorithm, forward_dtype=dtype)
    return bfs_forward(ctx, source)


def nx_counts(graph, source):
    """(sigma, level) oracles via networkx."""
    import networkx as nx

    nxg = graph.to_networkx()
    levels = nx.single_source_shortest_path_length(nxg, source)
    sigma = np.zeros(graph.n)
    S = np.zeros(graph.n, dtype=np.int64)
    # count shortest paths by DP over levels
    sigma[source] = 1
    order = sorted(levels, key=levels.get)
    preds = {v: [] for v in order}
    for v in order:
        for w in nxg.neighbors(v) if not graph.directed else nxg.successors(v):
            if levels.get(w, -1) == levels[v] + 1:
                preds[w].append(v)
    for v in order:
        if v != source:
            sigma[v] = sum(sigma[p] for p in preds[v])
        S[v] = levels[v]
    return sigma, S


class TestPathCounts:
    @pytest.mark.parametrize("algorithm", ["sccooc", "sccsc", "veccsc"])
    def test_diamond_sigma_splits(self, diamond_graph, algorithm):
        fwd = run_forward(diamond_graph, 0, algorithm)
        assert fwd.sigma.tolist() == [1, 1, 1, 2]
        assert fwd.levels.tolist() == [0, 1, 1, 2]
        assert fwd.depth == 2

    @pytest.mark.parametrize("algorithm", ["sccooc", "sccsc", "veccsc"])
    @pytest.mark.parametrize("directed", [True, False])
    def test_random_graph_matches_networkx(self, algorithm, directed):
        g = random_graph(60, 0.06, directed=directed, seed=42)
        fwd = run_forward(g, 0, algorithm)
        sigma, S = nx_counts(g, 0)
        np.testing.assert_array_equal(fwd.sigma, sigma)
        reached = sigma > 0
        np.testing.assert_array_equal(fwd.levels[reached], S[reached])

    def test_source_properties(self, small_undirected):
        fwd = run_forward(small_undirected, 3)
        assert fwd.sigma[3] == 1
        assert fwd.levels[3] == 0
        assert fwd.source == 3

    def test_unreachable_sigma_zero(self):
        g = Graph([0], [1], 5, directed=True)
        fwd = run_forward(g, 0)
        assert fwd.sigma.tolist() == [1, 1, 0, 0, 0]
        assert fwd.depth == 1

    def test_isolated_source(self):
        g = Graph([1], [2], 4, directed=True)
        fwd = run_forward(g, 0)
        assert fwd.depth == 0
        assert fwd.sigma[0] == 1

    def test_frontier_sizes_sum_to_reached(self, small_directed):
        fwd = run_forward(small_directed, 0)
        assert sum(fwd.frontier_sizes) == int((fwd.sigma > 0).sum()) - 1

    def test_depth_matches_metric(self, small_undirected):
        from repro.graphs.metrics import bfs_depth

        fwd = run_forward(small_undirected, 0)
        assert fwd.depth == bfs_depth(small_undirected, 0)

    def test_source_out_of_range(self, small_undirected):
        with pytest.raises(ValueError, match="out of range"):
            run_forward(small_undirected, 999)


class TestOverflow:
    def overflow_graph(self):
        """Stacked diamonds double sigma per level: 2^40 paths overflow int32."""
        edges = []
        v = 0
        for _ in range(40):
            a, b, c = v + 1, v + 2, v + 3
            edges += [(v, a), (v, b), (a, c), (b, c)]
            v = c
        return Graph.from_edges(edges, v + 1, directed=True)

    def test_int32_overflow_detected(self):
        with pytest.raises(SigmaOverflowError):
            run_forward(self.overflow_graph(), 0, dtype=np.int32)

    def test_float64_handles_it(self):
        fwd = run_forward(self.overflow_graph(), 0, dtype=np.float64)
        assert fwd.sigma.max() == 2.0**40


class TestTurboBFSApi:
    def test_returns_host_copies(self, small_undirected):
        device = Device()
        res = turbo_bfs(small_undirected, 0, device=device)
        assert device.memory.used_bytes == 0  # everything freed
        assert res.sigma[0] == 1

    def test_reached_mask(self, small_directed):
        res = turbo_bfs(small_directed, 0)
        assert res.reached.dtype == bool
        assert res.reached[0]

    def test_algorithm_string(self, small_undirected):
        res = turbo_bfs(small_undirected, 0, algorithm="veccsc")
        assert res.depth >= 0

    def test_profiler_records_run(self, small_undirected):
        device = Device()
        turbo_bfs(small_undirected, 0, device=device, algorithm="sccsc")
        names = device.profiler.kernel_names()
        assert "sccsc_spmv" in names and "bfs_update" in names
