"""Warp-level access-pattern analysis tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gpusim import warp as W


class TestCoalesced:
    def test_exact_multiples(self):
        assert W.coalesced_transactions(8) == 1      # 8 x 4B = 32B
        assert W.coalesced_transactions(16) == 2

    def test_round_up(self):
        assert W.coalesced_transactions(9) == 2

    def test_zero(self):
        assert W.coalesced_transactions(0) == 0

    def test_other_element_size(self):
        assert W.coalesced_transactions(4, element_bytes=8) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            W.coalesced_transactions(-1)


class TestGather:
    def test_contiguous_indices_coalesce(self):
        idx = np.arange(32)
        assert W.gather_transactions(idx) == 4  # 32 words / 8 per segment

    def test_fully_scattered(self):
        idx = np.arange(32) * 64  # every index a distinct segment
        assert W.gather_transactions(idx) == 32

    def test_broadcast_same_address(self):
        idx = np.zeros(32, dtype=np.int64)
        assert W.gather_transactions(idx) == 1

    def test_padding_adds_nothing(self):
        # 33 scattered indices = 2 warps; second warp has 1 real lane
        idx = np.arange(33) * 64
        assert W.gather_transactions(idx) == 33

    def test_empty(self):
        assert W.gather_transactions(np.array([])) == 0

    def test_bounds(self):
        rng = np.random.default_rng(7)
        idx = rng.integers(0, 10_000, 1000)
        txn = W.gather_transactions(idx)
        assert np.ceil(1000 / 8) <= txn <= 1000


class TestCachedGather:
    def test_cap_when_array_fits_l2(self):
        rng = np.random.default_rng(1)
        array_words = 1000  # 4 KB << L2
        idx = rng.integers(0, array_words, 100_000)
        txn = W.cached_gather_transactions(idx, 4, array_words)
        assert txn <= -(-array_words * 4 // 32)

    def test_no_cap_for_huge_array(self):
        rng = np.random.default_rng(2)
        array_words = 10 * W.L2_BYTES  # way past L2
        idx = rng.integers(0, array_words, 2000)
        assert W.cached_gather_transactions(idx, 4, array_words) == pytest.approx(
            W.gather_transactions(idx), rel=0.15
        )

    def test_capped_random_within_bounds(self):
        assert W.capped_random_transactions(10_000, 100) <= -(-100 * 4 // 32)
        assert W.capped_random_transactions(5, 100) == 5

    def test_capped_random_rejects_negative(self):
        with pytest.raises(ValueError):
            W.capped_random_transactions(-1, 10)


class TestDivergence:
    def test_uniform_work(self):
        w = np.full(64, 5)
        assert W.divergent_warp_cycles(w) == 2 * 5

    def test_one_hot_warp(self):
        w = np.zeros(32, dtype=np.int64)
        w[0] = 100
        assert W.divergent_warp_cycles(w) == 100

    def test_base_cycles_per_warp(self):
        w = np.zeros(64, dtype=np.int64)
        assert W.divergent_warp_cycles(w, base_cycles=3) == 6

    def test_skew_costs_more_than_balanced(self):
        """Same total work, divergent layout costs more -- the scCSC story."""
        balanced = np.full(320, 10)
        skewed = np.zeros(320, dtype=np.int64)
        skewed[::32] = 100  # same total, one big lane per warp
        assert W.divergent_warp_cycles(skewed) > W.divergent_warp_cycles(balanced) * 2

    def test_empty(self):
        assert W.divergent_warp_cycles(np.array([], dtype=np.int64)) == 0

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            W.divergent_warp_cycles(np.array([-1]))


class TestUniformAndAtomic:
    def test_uniform_warp_cycles(self):
        assert W.uniform_warp_cycles(64, 3) == 6
        assert W.uniform_warp_cycles(1, 3) == 3
        assert W.uniform_warp_cycles(0, 3) == 0

    def test_warp_count(self):
        assert W.warp_count(0) == 0
        assert W.warp_count(1) == 1
        assert W.warp_count(33) == 2

    def test_atomic_no_conflicts(self):
        t = np.arange(32) * 100
        assert W.atomic_conflict_cycles(t) == 0

    def test_atomic_full_conflict(self):
        t = np.zeros(32, dtype=np.int64)
        assert W.atomic_conflict_cycles(t) == 31 * 2

    def test_atomic_partial(self):
        t = np.repeat(np.arange(8), 4)  # runs of 4 within one warp
        assert W.atomic_conflict_cycles(t) == 3 * 2

    def test_atomic_empty(self):
        assert W.atomic_conflict_cycles(np.array([], dtype=np.int64)) == 0

    def test_atomic_padding_no_conflict(self):
        # 33 identical targets: warp 1 has 32 (31 conflicts), warp 2 has 1
        t = np.zeros(33, dtype=np.int64)
        assert W.atomic_conflict_cycles(t) == 31 * 2


@given(st.lists(st.integers(0, 10_000), min_size=0, max_size=400))
def test_gather_transactions_bounds_property(idx):
    arr = np.asarray(idx, dtype=np.int64)
    txn = W.gather_transactions(arr)
    if arr.size == 0:
        assert txn == 0
    else:
        assert -(-arr.size // 8) <= txn <= arr.size


@given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_divergence_at_least_mean_work_property(work):
    w = np.asarray(work, dtype=np.int64)
    total = W.divergent_warp_cycles(w)
    assert total >= -(-int(w.sum()) // 32)  # can't beat perfect balance
    assert total <= int(w.sum())            # can't exceed serial
