"""Memory-observability tests (DESIGN.md §13): the allocation-timeline
profiler, watermark attribution, arena fragmentation telemetry, OOM
forensics with the what-if advisor, and the exporter/report faces."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro import cli, obs, turbo_bc
from repro.bench.runner import check_paper_scale_memory
from repro.graphs import suite
from repro.gpusim.device import TITAN_XP, Device
from repro.gpusim.errors import DeviceOutOfMemoryError
from repro.gpusim.memory import DeviceArena, DeviceMemory
from repro.obs.export import chrome_trace_events, jsonl_records
from repro.perf.memory_model import (
    advise_fit,
    gunrock_footprint_bytes,
    turbobc_batched_footprint_bytes,
)
from tests.conftest import random_graph

PHASES = {"setup", "forward", "backward", "rerun", "-"}


@pytest.fixture(autouse=True)
def no_leaked_session():
    """Every test must leave the global telemetry switch off."""
    yield
    assert obs.get_telemetry() is None
    obs.deactivate()


def _run_traced(graph, *, sources=0, algorithm="sccsc", **kwargs):
    """One turbo_bc run under a full (trace + memtrace) session."""
    device = Device()
    with obs.session(trace=True, memtrace=True) as tel:
        result = turbo_bc(
            graph, sources=sources, algorithm=algorithm, device=device, **kwargs
        )
    return tel, device, result


class TestMemTraceBasics:
    def test_peak_matches_allocator_and_model(self):
        g = random_graph(60, 0.08, directed=True, seed=1)
        tel, device, _ = _run_traced(g)
        mt = tel.memtrace
        assert mt.peak_bytes == device.memory.run_peak_bytes
        # no sigma overflow on a 60-vertex graph: the int32/float32 run's
        # peak is the paper's 7n + 1 + m word model, to the byte.
        assert mt.peak_bytes == turbobc_batched_footprint_bytes(g.n, g.m, 1, "csc")

    def test_event_stream_covers_both_allocators(self):
        g = random_graph(40, 0.1, directed=False, seed=2)
        tel, _, _ = _run_traced(g)
        kinds = {e.kind for e in tel.memtrace.events}
        assert {"alloc", "free", "carve", "release"} <= kinds
        # per-source working vectors come from the arena, not the device
        arena_names = {
            lt.name for lt in tel.memtrace.lifetimes if lt.scope == "arena"
        }
        assert "sigma" in arena_names

    def test_lifetimes_are_closed_intervals(self):
        g = random_graph(40, 0.1, directed=True, seed=3)
        tel, _, _ = _run_traced(g)
        for lt in tel.memtrace.lifetimes:
            assert lt.nbytes >= 0
            if lt.end_s is not None:
                assert lt.start_s <= lt.end_s
            d = lt.to_dict()
            json.dumps(d)  # JSON-able
            assert d["scope"] in ("device", "arena", "slab")

    def test_metrics_side_channel(self):
        g = random_graph(40, 0.1, directed=True, seed=4)
        tel, device, _ = _run_traced(g)
        assert tel.metrics.counter("mem_allocs", scope="device").value > 0
        assert tel.metrics.counter("mem_allocs", scope="arena").value > 0
        assert (tel.metrics.gauge("mem_peak_bytes").max
                == device.memory.run_peak_bytes)

    def test_snapshot_carries_mem_summary(self):
        g = random_graph(30, 0.1, directed=True, seed=5)
        tel, device, _ = _run_traced(g)
        snap = tel.snapshot()
        assert snap["mem"]["peak_bytes"] == device.memory.run_peak_bytes
        assert snap["mem"]["attributed_bytes"] == snap["mem"]["peak_bytes"]
        json.dumps(snap)

    def test_session_without_memtrace_has_none(self):
        with obs.session(trace=True) as tel:
            assert tel.memtrace is None


class TestWatermarkAttribution:
    @pytest.mark.parametrize("n,p,directed,seed", [
        (50, 0.08, True, 0),
        (50, 0.08, False, 1),
        (80, 0.05, True, 2),
        (64, 0.12, False, 3),
    ])
    def test_attribution_closes_to_100_percent(self, n, p, directed, seed):
        g = random_graph(n, p, directed=directed, seed=seed, connected_chain=True)
        tel, device, _ = _run_traced(g, sources=[0, 1])
        mt = tel.memtrace
        assert mt.peak_bytes == device.memory.run_peak_bytes
        assert mt.attributed_bytes == mt.peak_bytes
        assert mt.watermark, "peak must have named rows"
        for row in mt.watermark:
            assert row["phase"] in PHASES
            assert row["nbytes"] > 0

    def test_peak_is_phase_tagged_backward(self):
        # The backward chunk (sigma + S + three deltas) outweighs the
        # forward chunk, so the run's peak lands in the backward stage and
        # the watermark carries rows allocated in distinct phases.
        g = random_graph(60, 0.08, directed=True, seed=6, connected_chain=True)
        tel, _, _ = _run_traced(g)
        mt = tel.memtrace
        assert mt.peak_phase == "backward"
        phases = {r["phase"] for r in mt.watermark}
        assert "setup" in phases        # matrix + bc
        assert "backward" in phases     # the delta vectors

    def test_phase_without_tracer_is_setup(self):
        # metrics-only sessions (bench rows) have no span stack: every
        # lifetime degrades to the setup phase but attribution still closes.
        g = random_graph(40, 0.1, directed=True, seed=7)
        device = Device()
        with obs.session(trace=False, memtrace=True) as tel:
            turbo_bc(g, sources=0, algorithm="sccsc", device=device)
        mt = tel.memtrace
        assert mt.attributed_bytes == mt.peak_bytes
        assert {r["phase"] for r in mt.watermark} <= {"setup", "-"}


class TestBitParity:
    def test_memtrace_on_off_results_identical(self):
        g = random_graph(50, 0.1, directed=False, seed=8, connected_chain=True)

        def run():
            return turbo_bc(g, sources=[0, 1], algorithm="sccsc",
                            device=Device())

        bare = run()
        with obs.session(trace=True, memtrace=True):
            traced = run()
        with obs.session(trace=False, memtrace=True):
            metrics_only = run()
        for other in (traced, metrics_only):
            assert np.array_equal(bare.bc, other.bc)
            assert bare.stats.kernel_launches == other.stats.kernel_launches
            assert bare.stats.gpu_time_s == other.stats.gpu_time_s
            assert bare.stats.peak_memory_bytes == other.stats.peak_memory_bytes


class TestArenaFragmentation:
    def _fragmented_arena(self):
        """An arena with two non-adjacent holes: 100 B @ 0 and 700 B @ 300.

        Live blocks must stay referenced (memtrace keys lifetimes on object
        identity, like any allocator does on pointers); the returned list
        keeps b and c alive.
        """
        mem = DeviceMemory(1 << 20)
        arena = DeviceArena(mem, 1000, name="test_arena")
        a = arena.carve("a", 100, np.uint8)
        live = [arena.carve("b", 100, np.uint8), arena.carve("c", 100, np.uint8)]
        arena.release(a)
        return mem, arena, live

    def test_fallback_reasons_split(self):
        with obs.session(trace=True, memtrace=True) as tel:
            _, arena, _live = self._fragmented_arena()
            assert arena.free_bytes == 800
            assert arena.largest_hole_bytes == 700
            # 750 B fits the free total but no single hole: fragmented.
            frag = arena.carve("frag_victim", 750, np.uint8)
            # 900 B exceeds the free total outright: oversized.
            over = arena.carve("oversized_victim", 900, np.uint8)
        assert arena.fallback_fragmented == 1
        assert arena.fallback_oversized == 1
        assert arena.fallback_allocs == 2
        # both fallbacks are plain device arrays, not slab views
        assert not hasattr(frag, "offset")
        assert not hasattr(over, "offset")
        mt = tel.memtrace
        reasons = [e.reason for e in mt.events if e.kind == "fallback"]
        assert reasons == ["fragmented", "oversized"]
        (summary,) = mt.arena_summaries()
        assert summary["name"] == "test_arena"
        assert summary["fallbacks"] == {"oversized": 1, "fragmented": 1}
        assert tel.metrics.counter("mem_arena_fallbacks",
                                   reason="fragmented").value == 1
        assert tel.metrics.counter("mem_arena_fallbacks",
                                   reason="oversized").value == 1

    def test_fragmentation_timeline_and_extrema(self):
        with obs.session(trace=True, memtrace=True) as tel:
            _, arena, _live = self._fragmented_arena()
        mt = tel.memtrace
        assert mt.frag_timeline, "every carve/release samples the free list"
        (summary,) = mt.arena_summaries()
        assert summary["max_hole_count"] == arena.hole_count == 2
        # after the release: free 800, largest 700 -> ratio 1 - 700/800
        assert summary["max_frag_ratio"] == pytest.approx(1 - 700 / 800)
        assert tel.metrics.gauge("mem_arena_holes").max == 2

    def test_slab_excluded_from_watermark(self):
        with obs.session(trace=True, memtrace=True) as tel:
            _keep = self._fragmented_arena()
        mt = tel.memtrace
        names = [r["name"] for r in mt.watermark]
        assert "test_arena" not in names          # the raw slab row
        assert "test_arena (free)" in names       # replaced by the filler
        assert mt.attributed_bytes == mt.peak_bytes
        slab_lts = [lt for lt in mt.lifetimes if lt.scope == "slab"]
        assert len(slab_lts) == 1


class TestOOMForensics:
    def test_device_alloc_emits_terminal_event(self):
        with obs.session(trace=True, memtrace=True) as tel:
            mem = DeviceMemory(1000)
            mem.alloc("resident", 800, np.uint8)
            with pytest.raises(DeviceOutOfMemoryError) as ei:
                mem.alloc("victim", 300, np.uint8)
        exc = ei.value
        assert exc.live == [("resident", 800)]
        assert exc.phase == "setup"
        assert exc.shortfall_bytes == 100
        assert "live allocations at failure" in exc.forensics()
        mt = tel.memtrace
        assert mt.events[-1].kind == "oom"
        assert mt.oom_events == [{
            "name": "victim", "requested_bytes": 300, "used_bytes": 800,
            "capacity_bytes": 1000, "wall_s": mt.oom_events[0]["wall_s"],
            "phase": "setup",
        }]
        assert tel.metrics.counter("mem_oom_events").value == 1

    def test_oom_without_session_still_carries_live_table(self):
        mem = DeviceMemory(1000)
        mem.alloc("resident", 900, np.uint8)
        with pytest.raises(DeviceOutOfMemoryError) as ei:
            mem.alloc("victim", 200, np.uint8)
        assert ei.value.live == [("resident", 900)]
        assert ei.value.phase is None

    def test_batched_admission_advice_round_trips(self):
        g = random_graph(200, 0.05, directed=True, seed=9)

        def fp(b):
            return turbobc_batched_footprint_bytes(g.n, g.m, b, "csc")

        spec = replace(TITAN_XP, global_memory_bytes=fp(3))
        device = Device(spec)
        with obs.session(trace=True, memtrace=True) as tel:
            with pytest.raises(DeviceOutOfMemoryError) as ei:
                turbo_bc(g, sources=range(8), algorithm="sccsc", device=device,
                         forward_dtype=np.int32, batch_size=8)
        exc = ei.value
        advice = exc.advice
        assert advice is not None and not advice.fits
        assert advice.batch == 8
        # exact round-trip: the suggested batch fits, the next one up does not
        assert advice.max_batch == 3
        assert fp(advice.max_batch) <= advice.capacity_bytes < fp(advice.max_batch + 1)
        # likewise max_n at the graph's own edge ratio
        m_per_n = g.m / g.n

        def fp_n(n):
            return turbobc_batched_footprint_bytes(
                n, int(round(n * m_per_n)), 8, "csc")

        assert fp_n(advice.max_n) <= advice.capacity_bytes < fp_n(advice.max_n + 1)
        assert "batch_size<=3" in advice.summary()
        # admission control is an OOM without an allocation: the terminal
        # telemetry event still lands
        assert tel.memtrace.oom_events[0]["name"].startswith("batched working set")
        assert exc.phase == "setup"

    def test_unbatched_oom_attaches_advice(self):
        g = random_graph(100, 0.1, directed=True, seed=10)
        device = Device(replace(TITAN_XP, global_memory_bytes=2000))
        with pytest.raises(DeviceOutOfMemoryError) as ei:
            turbo_bc(g, sources=0, algorithm="sccsc", device=device)
        advice = ei.value.advice
        assert advice is not None and not advice.fits
        # forward_dtype="auto" resolves to int32 first; the OOM happened on
        # that attempt, so the advice describes the config that failed and
        # round-trips exactly against its own dtypes.
        assert advice.forward_dtype == "int32"
        m_per_n = g.m / g.n

        def fp_n(n):
            return turbobc_batched_footprint_bytes(
                n, int(round(n * m_per_n)), 1, advice.fmt,
                np.dtype(advice.forward_dtype), np.dtype(advice.backward_dtype))

        assert fp_n(advice.max_n) <= advice.capacity_bytes
        assert fp_n(advice.max_n + 1) > advice.capacity_bytes
        assert ei.value.live is not None

    def test_paper_scale_planned_oom_advice(self):
        # sk-2005 is the paper's flagship Table 4 row: TurboBC fits the
        # TITAN Xp, gunrock's 22n + 2m words do not.  The planned-mode OOM
        # must carry the advisor's max_n, exact against the gunrock model.
        entry = suite.get("sk-2005")
        verdict = check_paper_scale_memory(entry)
        assert verdict["turbobc_alloc_ok"] is True
        assert verdict["gunrock_alloc_ok"] is False
        max_n = verdict["gunrock_max_n"]
        cap = TITAN_XP.global_memory_bytes
        m_per_n = entry.paper.m / entry.paper.n

        def fp_n(n):
            return gunrock_footprint_bytes(n, int(round(n * m_per_n)))

        assert 0 < max_n < entry.paper.n
        assert fp_n(max_n) <= cap < fp_n(max_n + 1)

    def test_advisor_dtype_fallback(self):
        n, m = 1000, 5000
        narrow = turbobc_batched_footprint_bytes(n, m, 1, "csc")
        wide = turbobc_batched_footprint_bytes(n, m, 1, "csc",
                                               np.int64, np.float64)
        cap = (narrow + wide) // 2
        advice = advise_fit(cap, n, m, forward_dtype=np.int64,
                            backward_dtype=np.float64)
        assert not advice.fits
        assert advice.dtype_fallback == ("int32", "float32")
        assert "int32/float32 would fit" in advice.summary()

    def test_advisor_fitting_config_reports_fits(self):
        advice = advise_fit(TITAN_XP.global_memory_bytes, 1000, 5000)
        assert advice.fits
        assert advice.max_batch >= 1
        assert "fits" in advice.summary()


class TestExport:
    def test_chrome_trace_memory_track(self):
        g = random_graph(40, 0.1, directed=True, seed=11)
        tel, _, _ = _run_traced(g)
        events = chrome_trace_events(tel)
        meta = [e for e in events if e["ph"] == "M" and e["tid"] == 3]
        assert any(e["args"]["name"] == "memory (lifetimes)" for e in meta)
        slices = [e for e in events if e["ph"] == "X" and e["tid"] == 3]
        assert slices, "every lifetime renders as a duration slice"
        assert any("[arena]" in e["name"] for e in slices)
        counters = [e for e in events if e["ph"] == "C" and e["tid"] == 3]
        assert any(e["name"].endswith("_holes") for e in counters)

    def test_chrome_trace_oom_instant(self):
        with obs.session(trace=True, memtrace=True) as tel:
            mem = DeviceMemory(1000)
            with pytest.raises(DeviceOutOfMemoryError):
                mem.alloc("victim", 2000, np.uint8)
        events = chrome_trace_events(tel)
        instants = [e for e in events if e["ph"] == "i" and e["tid"] == 3]
        assert len(instants) == 1

    def test_jsonl_memory_records(self):
        g = random_graph(40, 0.1, directed=True, seed=12)
        tel, _, _ = _run_traced(g)
        records = jsonl_records(tel)
        types = {r["type"] for r in records}
        assert {"mem_lifetime", "mem_event"} <= types
        for r in records:
            json.dumps(r)

    def test_jsonl_oom_record(self):
        with obs.session(trace=True, memtrace=True) as tel:
            mem = DeviceMemory(1000)
            with pytest.raises(DeviceOutOfMemoryError):
                mem.alloc("victim", 2000, np.uint8)
        oom_rows = [r for r in jsonl_records(tel) if r["type"] == "mem_oom"]
        assert len(oom_rows) == 1
        assert oom_rows[0]["requested_bytes"] == 2000


class TestMemReport:
    def test_build_and_render(self):
        g = random_graph(60, 0.08, directed=True, seed=13)
        tel, device, _ = _run_traced(g)
        report = obs.build_mem_report(tel, device=device, graph=g, fmt="csc",
                                      title="test report")
        assert report.attributed_bytes == report.peak_bytes
        assert sum(r["pct"] for r in report.watermark) == pytest.approx(100.0)
        # no overflow re-run on this graph: measured peak == paper model
        assert report.model["delta_bytes"] == 0
        assert report.device["run_peak_bytes"] == device.memory.run_peak_bytes
        text = obs.render_mem_report(report)
        assert "## Watermark" in text
        assert "## Arena fragmentation" in text
        assert "100.0% of peak" in text
        doc = report.to_dict()
        assert doc["schema"] == "repro.obs/mem-report/v1"
        json.dumps(doc)

    def test_records_round_trip(self):
        g = random_graph(30, 0.1, directed=False, seed=14)
        tel, device, _ = _run_traced(g)
        report = obs.build_mem_report(tel, device=device)
        records = obs.mem_report_records(report)
        assert records[0]["type"] == "mem_report"
        assert records[0]["schema"] == "repro.obs/mem-report/v1"
        assert sum(1 for r in records if r["type"] == "mem_watermark") == len(
            report.watermark)

    def test_requires_memtrace_session(self):
        with obs.session(trace=True) as tel:
            pass
        with pytest.raises(ValueError, match="memtrace"):
            obs.build_mem_report(tel)


class TestMemReportCLI:
    def test_cli_writes_all_faces(self, tmp_path, capsys):
        edges = tmp_path / "tiny.el"
        g = random_graph(40, 0.12, directed=True, seed=15, connected_chain=True)
        edges.write_text(
            "\n".join(f"{u} {v}" for u, v in zip(g.src, g.dst)) + "\n")
        out_md = tmp_path / "mem.md"
        out_json = tmp_path / "mem.json"
        out_jsonl = tmp_path / "mem.jsonl"
        rc = cli.main([
            "mem-report", str(edges), "--sources", "2",
            "--out", str(out_md), "--json", str(out_json),
            "--jsonl", str(out_jsonl),
        ])
        assert rc == 0
        assert "## Watermark" in capsys.readouterr().out
        assert "## Watermark" in out_md.read_text()
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro.obs/mem-report/v1"
        assert doc["attributed_bytes"] == doc["peak_bytes"] > 0
        assert all(r["phase"] for r in doc["watermark"])
        rows = [json.loads(line) for line in out_jsonl.read_text().splitlines()]
        assert rows[0]["type"] == "mem_report"
        assert obs.get_telemetry() is None
