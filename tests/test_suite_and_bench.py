"""Benchmark-suite registry and experiment-runner tests.

Runner tests use miniature stand-in entries so the suite stays fast; the
real registry entries are validated structurally and two small ones are
actually built.
"""

import pytest

from repro.bench.runner import (
    check_paper_scale_memory,
    run_bc_per_vertex,
    run_exact_bc,
    _plan_gunrock_arrays,
    _plan_turbobc_arrays,
)
from repro.bench.tables import format_comparison_table, format_rows
from repro.graphs import suite
from repro.graphs.suite import BenchmarkGraph, PaperRow, TABLE5
from repro.gpusim.device import Device
from tests.conftest import random_graph


def tiny_entry(name="tiny", directed=False, algorithm="sccsc", table=1):
    return BenchmarkGraph(
        name=name,
        table=table,
        directed=directed,
        algorithm=algorithm,
        paper=PaperRow(100, 500, 10, 5, 2, 4, 9, 1.0, 100, 10, 2.0, 1.5),
        factory=lambda: random_graph(60, 0.08, directed=directed, seed=1,
                                     connected_chain=True),
    )


class TestRegistry:
    def test_thirty_three_graphs(self):
        assert len(suite.SUITE) == 33

    def test_table_sizes_match_paper(self):
        assert len(suite.table(1)) == 10
        assert len(suite.table(2)) == 10
        assert len(suite.table(3)) == 9
        assert len(suite.table(4)) == 4

    def test_directedness_split(self):
        directed = sum(e.directed for e in suite.SUITE.values())
        assert directed == 15  # the paper: 15 directed, 18 undirected

    def test_table5_references_resolve(self):
        for row in TABLE5:
            assert row.graph_name in suite.SUITE

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            suite.get("facebook")

    def test_table_bounds(self):
        with pytest.raises(ValueError):
            suite.table(5)

    def test_gunrock_oom_flags(self):
        for e in suite.table(4):
            assert e.paper.gunrock_oom
        for e in suite.table(3):
            assert not e.paper.gunrock_oom

    def test_build_caches(self):
        e = suite.get("mycielskian15")  # repro-scale: mycielskian 12
        try:
            g1 = e.build()
            assert g1 is e.build()
            assert g1.name == "mycielskian15"
        finally:
            suite.clear_graph_cache()

    def test_paper_rows_have_expected_magnitudes(self):
        for e in suite.SUITE.values():
            p = e.paper
            assert p.n > 0 and p.m > 0
            assert p.degree_max >= p.degree_mean
            assert p.depth >= 1

    def test_algorithms_match_tables(self):
        assert all(e.algorithm == "sccsc" for e in suite.table(1))
        assert all(e.algorithm == "sccooc" for e in suite.table(2))
        assert all(e.algorithm == "veccsc" for e in suite.table(3))


class TestRunner:
    def test_bc_per_vertex_row(self):
        row = run_bc_per_vertex(tiny_entry())
        assert row.verified
        assert row.runtime_ms > 0
        assert row.mteps > 0
        assert row.speedup_sequential > 0
        assert row.speedup_gunrock > 0
        assert row.speedup_ligra > 0
        assert not row.gunrock_oom

    def test_bc_per_vertex_subset_of_systems(self):
        row = run_bc_per_vertex(tiny_entry(), systems=("sequential",), verify=False)
        assert row.speedup_gunrock is None
        assert row.verified is None

    def test_exact_bc_row_extrapolates(self):
        entry = tiny_entry(directed=True, algorithm="sccooc")
        row = run_exact_bc(entry, sample_sources=10)
        assert row.verified
        assert row.mteps > 0
        # extrapolated total must exceed the sampled time
        assert row.runtime_ms > 0

    def test_exact_bc_all_sources_when_small(self):
        entry = tiny_entry()
        row = run_exact_bc(entry, sample_sources=10**6)  # > n: runs everything
        assert row.verified


class TestPaperScaleMemory:
    def test_table4_oom_reproduced(self):
        for e in suite.table(4):
            v = check_paper_scale_memory(e)
            assert v["turbobc_fits"], e.name
            assert not v["gunrock_fits"], e.name
            assert v["turbobc_alloc_ok"], e.name
            assert not v["gunrock_alloc_ok"], e.name

    def test_model_matches_allocator(self):
        """Closed-form words must equal the allocator's planned peak."""
        n, m = 1_000_000, 20_000_000
        dev = Device(backed=False)
        peak = _plan_turbobc_arrays(dev, n, m, "csc")
        assert peak == 4 * (7 * n + 1 + m)
        from repro.perf.memory_model import gunrock_measured_words

        dev = Device(backed=False)
        peak = _plan_gunrock_arrays(dev, n, m)
        assert peak == 4 * gunrock_measured_words(n, m)

    def test_mycielski_group_fits_both(self):
        for name in suite.MYCIELSKI_GROUP:
            v = check_paper_scale_memory(suite.get(name))
            assert v["turbobc_fits"] and v["gunrock_fits"], name

    def test_custom_capacity(self):
        e = suite.get("mycielskian19")
        v = check_paper_scale_memory(e, capacity_bytes=2**20)
        assert not v["turbobc_fits"]


class TestFormatting:
    def test_format_rows_renders(self):
        row = run_bc_per_vertex(tiny_entry(), systems=("sequential",))
        text = format_rows([row], title="T")
        assert "tiny" in text and "MTEPs" in text and text.startswith("T")

    def test_comparison_table_oom_marker(self):
        entry = tiny_entry()
        row = run_bc_per_vertex(entry, systems=())
        row.gunrock_oom = True
        text = format_comparison_table([entry], [row])
        assert "OOM" in text
