"""Graph container tests."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_directed_keeps_orientation(self):
        g = Graph([0], [1], 2, directed=True)
        assert g.m == 1
        assert g.src.tolist() == [0]
        assert g.dst.tolist() == [1]

    def test_undirected_symmetrizes(self):
        g = Graph([0], [1], 2, directed=False)
        assert g.m == 2
        assert g.num_undirected_edges == 1

    def test_num_undirected_edges_rejected_on_digraph(self):
        g = Graph([0], [1], 2, directed=True)
        with pytest.raises(ValueError):
            g.num_undirected_edges

    def test_self_loops_dropped(self):
        g = Graph([0, 1], [0, 0], 2, directed=True)
        assert g.m == 1

    def test_duplicate_edges_collapse(self):
        g = Graph([0, 0, 0], [1, 1, 1], 2, directed=True)
        assert g.m == 1

    def test_from_edges_pairs(self):
        g = Graph.from_edges([(0, 1), (1, 2)], 3, directed=True)
        assert g.m == 2

    def test_from_edges_empty(self):
        g = Graph.from_edges([], 3, directed=False)
        assert g.m == 0 and g.n == 3

    def test_from_edges_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(m, 2\)"):
            Graph.from_edges(np.zeros((2, 3)), 3, directed=True)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            Graph([], [], -1, directed=True)

    def test_from_scipy(self):
        from scipy.sparse import coo_array

        sp = coo_array((np.ones(2), ([0, 1], [1, 2])), shape=(3, 3))
        g = Graph.from_scipy(sp, directed=True)
        assert g.m == 2

    def test_from_scipy_rejects_non_square(self):
        from scipy.sparse import coo_array

        sp = coo_array(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            Graph.from_scipy(sp, directed=True)

    def test_networkx_roundtrip(self):
        import networkx as nx

        nxg = nx.DiGraph([(0, 1), (1, 2), (2, 0)])
        g = Graph.from_networkx(nxg)
        back = g.to_networkx()
        assert sorted(back.edges()) == sorted(nxg.edges())


class TestDerived:
    def test_degrees_directed(self):
        g = Graph([0, 0, 1], [1, 2, 2], 3, directed=True)
        assert g.out_degree().tolist() == [2, 1, 0]
        assert g.in_degree().tolist() == [0, 1, 2]

    def test_degrees_undirected_symmetric(self):
        g = Graph([0, 0], [1, 2], 3, directed=False)
        assert np.array_equal(g.out_degree(), g.in_degree())

    def test_degrees_cached(self):
        g = Graph([0], [1], 2, directed=True)
        assert g.out_degree() is g.out_degree()

    def test_reverse(self):
        g = Graph([0, 1], [1, 2], 3, directed=True)
        r = g.reverse()
        assert np.array_equal(r.out_degree(), g.in_degree())
        assert r.m == g.m

    def test_reverse_of_undirected_is_identical(self):
        g = Graph([0, 1], [1, 2], 3, directed=False)
        r = g.reverse()
        assert np.array_equal(np.sort(r.src), np.sort(g.src))

    def test_formats_agree(self):
        g = Graph([0, 0, 1, 3], [1, 2, 3, 0], 4, directed=True)
        d = g.to_csc().to_dense()
        assert np.array_equal(g.to_cooc().to_dense(), d)
        assert np.array_equal(g.to_csr().to_dense(), d)

    def test_format_views_cached(self):
        g = Graph([0], [1], 2, directed=True)
        assert g.to_csc() is g.to_csc()
        assert g.to_cooc() is g.to_cooc()

    def test_scipy_csc_matches(self):
        g = Graph([0, 1], [1, 2], 3, directed=True)
        assert np.array_equal(np.asarray(g.to_scipy_csc().todense()), g.to_csc().to_dense())

    def test_repr(self):
        g = Graph([0], [1], 2, directed=False, name="t")
        assert "undirected" in repr(g) and "'t'" in repr(g)
