"""Structural metric tests (scf, degree stats, BFS depth)."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.metrics import (
    DegreeStats,
    bfs_depth,
    bfs_levels,
    classify_regularity,
    degree_stats,
    scale_free_metric,
)


def star(n):
    return Graph(np.zeros(n - 1, dtype=np.int64), np.arange(1, n), n, directed=False)


def path(n):
    idx = np.arange(n - 1)
    return Graph(idx, idx + 1, n, directed=False)


class TestDegreeStats:
    def test_path(self):
        s = degree_stats(path(5))
        assert s.max == 2 and s.mean == pytest.approx(8 / 5)

    def test_uses_out_degree_for_digraphs(self):
        g = Graph([0, 0, 0], [1, 2, 3], 4, directed=True)
        assert degree_stats(g).max == 3

    def test_empty_graph(self):
        s = degree_stats(Graph([], [], 0, directed=False))
        assert s == DegreeStats(0, 0.0, 0.0)

    def test_str_format(self):
        assert str(DegreeStats(44, 6.2, 3.9)) == "44/6/4"


class TestScaleFreeMetric:
    def test_ring_is_regular(self):
        n = 64
        idx = np.arange(n)
        g = Graph(idx, (idx + 1) % n, n, directed=False)
        # every degree is 2: expected neighbour degree = 2
        assert scale_free_metric(g) == pytest.approx(2.0)

    def test_star_is_low(self):
        # hub neighbours are all leaves: metric ~2 despite extreme max degree
        # (this is the mawi phenomenon: regular under scf)
        assert scale_free_metric(star(256)) < 3

    def test_clique_equals_degree(self):
        n = 16
        src, dst = np.nonzero(~np.eye(n, dtype=bool))
        g = Graph(src, dst, n, directed=False)
        assert scale_free_metric(g) == pytest.approx(n - 1)

    def test_empty(self):
        assert scale_free_metric(Graph([], [], 3, directed=False)) == 0.0

    def test_mycielski_is_irregular_at_scale(self):
        from repro.graphs.generators import mycielski_graph

        assert classify_regularity(mycielski_graph(13)) == "irregular"

    def test_road_like_is_regular(self):
        assert classify_regularity(path(200)) == "regular"


class TestBFS:
    def test_path_depth(self):
        assert bfs_depth(path(10), 0) == 9
        assert bfs_depth(path(10), 5) == 5

    def test_star_depth(self):
        assert bfs_depth(star(10), 0) == 1
        assert bfs_depth(star(10), 3) == 2

    def test_levels_unreachable(self):
        g = Graph([0], [1], 4, directed=True)
        lv = bfs_levels(g, 0)
        assert lv[0] == 0 and lv[1] == 1
        assert lv[2] == -1 and lv[3] == -1

    def test_directed_respects_orientation(self):
        g = Graph([0, 1], [1, 2], 3, directed=True)
        assert bfs_depth(g, 0) == 2
        assert bfs_depth(g, 2) == 0

    def test_source_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            bfs_levels(path(3), 7)

    def test_matches_networkx(self):
        import networkx as nx

        from tests.conftest import random_graph

        g = random_graph(50, 0.06, directed=True, seed=9)
        lv = bfs_levels(g, 0)
        nx_lv = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        for v in range(g.n):
            assert lv[v] == nx_lv.get(v, -1)
