"""Cross-run observability tests: run ledger, SLO budgets, canary, trend.

The load-bearing guarantees (DESIGN.md §16):

* **identity determinism** -- two sessions over the same graph/config
  produce byte-identical fingerprints and (on the deterministic
  simulator) byte-identical metric blocks;
* **one record per user-visible run** -- multi-GPU task loops and the
  dtype-auto overflow replay never double-append;
* **lossless bench ingestion** -- flattening an ingested record yields
  exactly the metric paths flattening the original ``BENCH_*.json``
  would, which is what lets ``perf-diff --baseline-ledger`` reproduce
  the paired-run verdict;
* **budgets bite** -- the canary spec passes clean and breaches under a
  modeled slowdown; trend flags drift in either direction.
"""

from __future__ import annotations

import json

import pytest

from repro import obs, turbo_bc
from repro.core.multigpu import multi_gpu_bc
from repro.gpusim.device import Device
from repro.obs.ledger import (
    Ledger,
    config_fingerprint,
    config_summary,
    filter_records,
    format_history,
    graph_fingerprint,
    read_ledger,
    run_fingerprint,
)
from repro.obs.slo import (
    BudgetSpecError,
    evaluate_budgets,
    load_budget_spec,
    metric_value,
    parse_budget_spec,
)
from repro.obs.trend import baseline_from_ledger, record_metrics, trend_report
from repro.graphs.graph import Graph
from tests.conftest import random_graph


@pytest.fixture(autouse=True)
def no_leaked_session():
    yield
    assert obs.get_telemetry() is None
    obs.deactivate()


def run_with_ledger(path, graph, **kwargs):
    """One turbo_bc run under a fresh ledger-carrying session."""
    with obs.session(trace=True, ledger=path):
        return turbo_bc(graph, device=Device(), **kwargs)


class TestFingerprints:
    def test_graph_fingerprint_ignores_edge_order(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        a = Graph.from_edges(edges, 4, directed=False)
        b = Graph.from_edges(list(reversed(edges)), 4, directed=False)
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_graph_fingerprint_normalises_undirected_endpoints(self):
        a = Graph.from_edges([(0, 1), (1, 2)], 3, directed=False)
        b = Graph.from_edges([(1, 0), (2, 1)], 3, directed=False)
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_structural_change_changes_fingerprint(self):
        a = Graph.from_edges([(0, 1), (1, 2)], 3, directed=False)
        b = Graph.from_edges([(0, 1), (0, 2)], 3, directed=False)
        c = Graph.from_edges([(0, 1), (1, 2)], 3, directed=True)
        assert graph_fingerprint(a) != graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(c)

    def test_config_fingerprint_is_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": "x"}) == config_fingerprint(
            {"b": "x", "a": 1}
        )
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_run_fingerprint_keys_on_graph_and_config(self):
        assert run_fingerprint("aaaa", {"k": 1}) != run_fingerprint(
            "bbbb", {"k": 1}
        )
        assert run_fingerprint("aaaa", {"k": 1}) != run_fingerprint(
            "aaaa", {"k": 2}
        )


class TestLedgerDeterminism:
    def test_two_sessions_byte_identical_records(self, tmp_path):
        """The ledger-determinism contract: identity AND metrics repeat."""
        g = random_graph(30, 0.12, directed=False, seed=5)
        run_with_ledger(tmp_path / "a.jsonl", g, batch_size=2)
        run_with_ledger(tmp_path / "b.jsonl", g, batch_size=2)
        (ra,) = read_ledger(tmp_path / "a.jsonl")
        (rb,) = read_ledger(tmp_path / "b.jsonl")
        assert ra["fingerprint"] == rb["fingerprint"]
        # wall-clock is the one nondeterministic field and lives outside
        # the metrics block; everything else must repeat byte-for-byte
        ra.pop("wall_time_s"), rb.pop("wall_time_s")
        assert json.dumps(ra, sort_keys=True) == json.dumps(rb, sort_keys=True)

    def test_record_shape(self, tmp_path):
        g = random_graph(25, 0.15, directed=True, seed=9)
        run_with_ledger(tmp_path / "l.jsonl", g, sources=[0, 1, 2])
        (rec,) = read_ledger(tmp_path / "l.jsonl")
        assert rec["schema"] == obs.LEDGER_SCHEMA
        assert rec["kind"] == "bc"
        assert rec["graph"]["n"] == g.n and rec["graph"]["m"] == g.m
        assert rec["config"]["driver"] == "turbo_bc"
        assert rec["config"]["sources"] == 3
        m = rec["metrics"]
        assert m["gpu_time_s"] > 0 and m["kernel_launches"] > 0
        assert m["peak_memory_bytes"] > 0
        assert m["kernel_exec_s"] > 0
        assert set(m["phase_time_s"]) <= {"setup", "forward", "backward",
                                          "rerun"}
        assert m["counters"]["kernel_launches"] == m["kernel_launches"]
        assert m["roofline_total_s"] == pytest.approx(
            sum(m["bound_time_s"].values())
        )

    def test_each_run_appends_one_record_with_per_run_deltas(self, tmp_path):
        g = random_graph(25, 0.15, directed=False, seed=2)
        with obs.session(trace=True, ledger=tmp_path / "l.jsonl"):
            turbo_bc(g, sources=[0], device=Device())
            turbo_bc(g, sources=[0], device=Device())
        r1, r2 = read_ledger(tmp_path / "l.jsonl")
        assert r1["fingerprint"] == r2["fingerprint"]
        # deltas, not session-cumulative totals: the second run's counters
        # and phase times must equal the first run's, not double them
        # (phase deltas come from a cumulative subtraction, so allow ulps)
        assert r1["metrics"]["counters"] == r2["metrics"]["counters"]
        p1, p2 = r1["metrics"]["phase_time_s"], r2["metrics"]["phase_time_s"]
        assert set(p1) == set(p2)
        for phase, t in p1.items():
            assert p2[phase] == pytest.approx(t)

    def test_multigpu_appends_one_record_not_per_task(self, tmp_path):
        g = random_graph(30, 0.12, directed=False, seed=4)
        with obs.session(trace=True, ledger=tmp_path / "l.jsonl"):
            _, mg = multi_gpu_bc(g, n_devices=2, sources=list(range(6)),
                                 batch_size=2)
        (rec,) = read_ledger(tmp_path / "l.jsonl")
        assert rec["kind"] == "multigpu"
        assert rec["config"]["n_devices"] == 2
        assert rec["metrics"]["schedule"]["scheduler"] == "cost"
        assert rec["metrics"]["link"]["transfers"] == mg.active_devices
        assert rec["metrics"]["parallel_efficiency"] == pytest.approx(
            mg.parallel_efficiency
        )

    def test_dtype_auto_overflow_appends_one_record(self, tmp_path):
        """The sigma-overflow float64 replay must not double-append."""
        # mycielski-style dense-ish graph with int32 path-count overflow is
        # expensive; the cheap proxy is dtype="auto" resolving without a
        # rerun -- still exercises the recursive driver call.
        g = random_graph(25, 0.2, directed=False, seed=8)
        run_with_ledger(tmp_path / "l.jsonl", g, forward_dtype="auto")
        records = read_ledger(tmp_path / "l.jsonl")
        assert len(records) == 1
        assert records[0]["config"]["forward_dtype"] != "auto"  # resolved

    def test_suspend_ledger_mutes_appends(self, tmp_path):
        g = random_graph(20, 0.15, directed=False, seed=1)
        with obs.session(trace=True, ledger=tmp_path / "l.jsonl") as tel:
            with tel.suspend_ledger():
                turbo_bc(g, sources=[0], device=Device())
            turbo_bc(g, sources=[0], device=Device())
        assert len(read_ledger(tmp_path / "l.jsonl")) == 1


class TestLedgerFile:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "l.jsonl"
        led = Ledger(path)
        led.append({"kind": "bc", "fingerprint": "x"})
        with open(path, "a") as fh:
            fh.write('{"kind": "bc", "finger')  # crash mid-append
        assert len(read_ledger(path)) == 1

    def test_mid_file_corruption_raises_with_line_number(self, tmp_path):
        path = tmp_path / "l.jsonl"
        led = Ledger(path)
        led.append({"kind": "bc"})
        with open(path, "a") as fh:
            fh.write("not json\n")
        led.append({"kind": "bc"})
        with pytest.raises(ValueError, match=r":2:"):
            read_ledger(path)

    def test_filter_records(self):
        recs = [
            {"kind": "bc", "graph": {"name": "a"}, "fingerprint": "0011"},
            {"kind": "canary", "graph": {"name": "a"}, "fingerprint": "0022"},
            {"kind": "bc", "graph": {"name": "b"}, "fingerprint": "0033"},
        ]
        assert len(filter_records(recs, kind="bc")) == 2
        assert len(filter_records(recs, graph="a")) == 2
        assert filter_records(recs, fingerprint="0033")[0]["kind"] == "bc"
        assert len(filter_records(recs, kind="bc", last=1)) == 1

    def test_format_history_renders_all_kinds(self, tmp_path):
        g = random_graph(20, 0.15, directed=False, seed=3)
        run_with_ledger(tmp_path / "l.jsonl", g, sources=[0])
        Ledger(tmp_path / "l.jsonl").append(
            {"kind": "bench", "bench": "adaptive", "fingerprint": "ff",
             "bench_payload": {}}
        )
        text = format_history(read_ledger(tmp_path / "l.jsonl"))
        assert "bc" in text and "bench" in text and "adaptive" in text

    def test_ingest_bench_is_lossless(self, tmp_path):
        """Flattened ingested record == flattened original file."""
        from repro.bench.baseline import flatten_metrics, load_bench_json

        bench = tmp_path / "BENCH_demo.json"
        doc = {
            "schema": "repro.bench/result/v1",
            "meta": {"bench": "demo", "config_fingerprint": "abcd1234",
                     "graph_hashes": {"g": "eeff0011"}},
            "graphs": [{"graph": "g", "gpu_time_s": 0.5, "launches": 7}],
            "criterion": {"achieved": 1.5},
        }
        bench.write_text(json.dumps(doc))
        rec = Ledger(tmp_path / "l.jsonl").ingest_bench(bench)
        assert rec["kind"] == "bench"
        assert rec["bench"] == "demo"
        assert rec["fingerprint"] == "abcd1234"  # lifted from the stamp
        assert record_metrics(rec) == flatten_metrics(load_bench_json(bench))

    def test_ingest_bench_without_meta_falls_back_to_filename(self, tmp_path):
        bench = tmp_path / "BENCH_legacy.json"
        bench.write_text(json.dumps({"x": 1}))
        rec = Ledger(tmp_path / "l.jsonl").ingest_bench(bench)
        assert rec["bench"] == "legacy"
        assert rec["fingerprint"]

    def test_config_summary(self):
        assert config_summary(
            {"config": {"algorithm": "adaptive", "batch_size": 4}}
        ) == "adaptive/b4"
        assert config_summary(
            {"config": {"algorithm": "sccsc", "batch_size": 1,
                        "n_devices": 2, "scheduler": "cost"}}
        ) == "sccsc/b1/gpus2/cost"
        assert config_summary(
            {"config": {"algorithm": "adaptive", "batch_size": 1,
                        "direction": "pull"}}
        ) == "adaptive/pull/b1"


class TestSLO:
    SPEC = {
        "schema": "repro.obs/slo/v1",
        "budgets": [
            {"name": "lat", "metric": "gpu_time_s", "max": 1.0},
            {"name": "eff", "metric": "parallel_efficiency", "min": 0.5},
        ],
    }

    def _record(self, **metrics):
        return {"kind": "bc", "graph": {"name": "g"},
                "config": {"algorithm": "sccsc", "batch_size": 1},
                "metrics": metrics}

    def test_parse_rejects_malformed_specs(self):
        cases = [
            ({}, "non-empty 'budgets'"),
            ({"budgets": []}, "non-empty 'budgets'"),
            ({"budgets": [{"metric": "x"}]}, "exactly one of 'max'/'min'"),
            ({"budgets": [{"metric": "x", "max": 1, "min": 0}]},
             "exactly one of 'max'/'min'"),
            ({"budgets": [{"max": 1.0}]}, "missing 'metric'"),
            ({"budgets": [{"metric": "x", "max": "fast"}]}, "must be a number"),
            ({"budgets": [{"metric": "x", "max": 1, "window": 0}]},
             "positive integer"),
            ({"budgets": [{"metric": "x", "max": 1, "typo": True}]},
             "unknown field"),
        ]
        for doc, msg in cases:
            with pytest.raises(BudgetSpecError, match=msg):
                parse_budget_spec(doc)

    def test_evaluate_ok_breach_missing(self):
        budgets = parse_budget_spec(self.SPEC)
        report = evaluate_budgets(budgets, [self._record(gpu_time_s=0.5)])
        by_name = {v.budget.name: v for v in report.verdicts}
        assert by_name["lat"].status == "ok"
        assert by_name["lat"].margin == pytest.approx(0.5)
        assert by_name["eff"].status == "missing"  # surfaced, not silent
        assert report.passed

        report = evaluate_budgets(budgets, [self._record(gpu_time_s=2.0)])
        v = {v.budget.name: v for v in report.verdicts}["lat"]
        assert v.status == "breach" and v.burn_rate == 1.0
        assert not report.passed

    def test_worst_of_window_and_burn_rate(self):
        budgets = parse_budget_spec(
            {"budgets": [{"name": "lat", "metric": "gpu_time_s", "max": 1.0}]}
        )
        recs = [self._record(gpu_time_s=t) for t in (0.5, 1.5, 0.8, 2.5)]
        (v,) = evaluate_budgets(budgets, recs).verdicts
        assert v.value == 2.5  # worst, not last
        assert v.burn_rate == pytest.approx(0.5)
        assert v.observed == 4

    def test_per_budget_window(self):
        budgets = parse_budget_spec(
            {"budgets": [{"name": "lat", "metric": "gpu_time_s", "max": 1.0,
                          "window": 2}]}
        )
        recs = [self._record(gpu_time_s=t) for t in (9.0, 0.5, 0.6)]
        (v,) = evaluate_budgets(budgets, recs).verdicts
        assert v.status == "ok" and v.observed == 2  # old breach aged out

    def test_filters_restrict_matching(self):
        budgets = parse_budget_spec(
            {"budgets": [
                {"name": "b", "metric": "gpu_time_s", "max": 1.0,
                 "graph": "grid-*", "kind": "canary", "config": "sccsc/*"},
            ]}
        )
        rec = {"kind": "canary", "graph": {"name": "grid-3x3"},
               "config": {"algorithm": "sccsc", "batch_size": 1},
               "metrics": {"gpu_time_s": 5.0}}
        other = {"kind": "bc", "graph": {"name": "grid-3x3"},
                 "config": {"algorithm": "sccsc", "batch_size": 1},
                 "metrics": {"gpu_time_s": 0.1}}
        (v,) = evaluate_budgets(budgets, [rec, other]).verdicts
        assert v.status == "breach" and v.observed == 1

    def test_derived_bound_share_metric(self):
        rec = self._record(
            bound_time_s={"bandwidth": 0.75, "compute": 0.25},
            roofline_total_s=1.0,
        )
        assert metric_value(rec, "bound_share.bandwidth") == 0.75
        assert metric_value(rec, "bound_share.mma") == 0.0
        assert metric_value(self._record(), "bound_share.bandwidth") is None

    def test_dotted_paths_and_non_numeric_leaves(self):
        rec = self._record(phase_time_s={"forward": 0.25}, note="hi")
        assert metric_value(rec, "phase_time_s.forward") == 0.25
        assert metric_value(rec, "phase_time_s.rerun") is None
        assert metric_value(rec, "note") is None

    def test_load_spec_json_and_errors(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(self.SPEC))
        assert len(load_budget_spec(path)) == 2
        with pytest.raises(BudgetSpecError, match="not found"):
            load_budget_spec(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(BudgetSpecError, match="malformed JSON"):
            load_budget_spec(bad)

    def test_load_spec_toml(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # 3.11+
        del tomllib
        path = tmp_path / "b.toml"
        path.write_text(
            '[[budgets]]\nname = "lat"\nmetric = "gpu_time_s"\nmax = 1.0\n'
        )
        (b,) = load_budget_spec(path)
        assert b.name == "lat" and b.max == 1.0


@pytest.fixture(scope="module")
def canary_run():
    """One shared clean canary pass (the matrix is deterministic)."""
    return obs.run_canary(seed=0)


class TestCanary:
    def test_matrix_covers_the_dispatch_surface(self, canary_run):
        records = canary_run.records
        assert len(records) >= 12  # the acceptance floor
        assert not canary_run.golden_failures
        assert canary_run.wall_time_s < 60
        kinds = {r["kind"] for r in records}
        assert kinds == {"canary"}
        summaries = {config_summary(r) for r in records}
        assert "sccsc/b1" in summaries          # static kernel
        assert "adaptive/b4" in summaries       # batched SpMM
        assert "sccsc/b1/gpus2/cost" in summaries  # 2-device cost scheduler
        assert any(r["config"]["algorithm"] == "adaptive"
                   and r["config"]["batch_size"] == 1 for r in records)

    def test_probe_metrics_and_identity(self, canary_run):
        for rec in canary_run.records:
            assert rec["config"]["seed"] == 0
            assert rec["metrics"]["golden_max_abs_err"] <= 1e-6
            assert rec["metrics"]["kernel_exec_s"] > 0
        again = obs.run_canary(seed=0)
        a = [r["fingerprint"] for r in canary_run.records]
        b = [r["fingerprint"] for r in again.records]
        assert a == b  # seed-deterministic identity

    def test_committed_budgets_pass_clean(self, canary_run):
        report = obs.check_canary_budgets(canary_run)
        assert report.passed
        assert not report.missing  # every budget found its probe record

    def test_bless_then_check_roundtrip(self, canary_run, tmp_path):
        path = obs.bless_canary_budgets(canary_run, path=tmp_path / "b.json")
        report = obs.check_canary_budgets(canary_run, path=path)
        assert report.passed and not report.missing
        assert len(report.verdicts) == 3 * len(canary_run.results)

    def test_tightened_budget_breaches(self, canary_run, tmp_path):
        path = obs.bless_canary_budgets(canary_run, path=tmp_path / "b.json")
        doc = json.loads(path.read_text())
        for b in doc["budgets"]:
            if b["metric"] == "kernel_exec_s":
                b["max"] /= 10.0
        path.write_text(json.dumps(doc))
        report = obs.check_canary_budgets(canary_run, path=path)
        assert not report.passed
        assert len(report.breaches) == len(canary_run.results)

    def test_missing_corpus_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="golden corpus"):
            obs.run_canary(seed=0, golden_directory=tmp_path)

    def test_health_report_renders(self, canary_run):
        slo = obs.check_canary_budgets(canary_run)
        text = obs.render_canary_report(canary_run, slo)
        assert "HEALTHY" in text and "petersen:sccsc-b1" in text
        assert "Budgets" in text


class TestTrend:
    def _rec(self, fp, **metrics):
        return {"kind": "bc", "fingerprint": fp, "graph": {"name": "g"},
                "config": {"algorithm": "sccsc", "batch_size": 1},
                "metrics": metrics}

    def test_clean_repeats_pass(self):
        recs = [self._rec("aa", gpu_time_s=1.0, kernel_exec_s=0.5)
                for _ in range(4)]
        trend = trend_report(recs)
        assert trend.passed
        (g,) = trend.groups
        assert g.baseline_runs == 3

    def test_regression_flagged(self):
        recs = [self._rec("aa", kernel_exec_s=0.5) for _ in range(3)]
        recs.append(self._rec("aa", kernel_exec_s=1.0))
        trend = trend_report(recs)
        assert not trend.passed
        ((_, c),) = trend.regressions
        assert c.name == "kernel_exec_s" and c.ratio == pytest.approx(2.0)

    def test_silent_improvement_flagged_but_passes(self):
        recs = [self._rec("aa", kernel_exec_s=1.0) for _ in range(3)]
        recs.append(self._rec("aa", kernel_exec_s=0.5))
        trend = trend_report(recs)
        assert trend.passed  # improvements don't flip the gate bit
        assert len(trend.improvements) == 1

    def test_singletons_skipped_not_compared(self):
        recs = [self._rec("aa", gpu_time_s=1.0),
                self._rec("bb", gpu_time_s=1.0)]
        trend = trend_report(recs)
        assert trend.passed and not trend.groups and trend.singletons == 2

    def test_window_caps_the_baseline(self):
        recs = [self._rec("aa", gpu_time_s=9.0)]  # ancient outlier
        recs += [self._rec("aa", gpu_time_s=1.0) for _ in range(5)]
        recs.append(self._rec("aa", gpu_time_s=1.0))
        trend = trend_report(recs, window=5)
        assert trend.passed  # outlier aged out of the trailing window

    def test_end_to_end_ledger_drift(self, tmp_path):
        """Driver-produced records: a modeled change must be flagged."""
        g = random_graph(30, 0.12, directed=False, seed=6)
        path = tmp_path / "l.jsonl"
        for _ in range(3):
            run_with_ledger(path, g, sources=[0, 1])
        records = read_ledger(path)
        doctored = json.loads(json.dumps(records[-1]))
        doctored["metrics"]["kernel_exec_s"] *= 2
        Ledger(path).append(doctored)
        trend = trend_report(read_ledger(path))
        assert not trend.passed
        assert any(c.name == "kernel_exec_s" for _, c in trend.regressions)

    def test_baseline_from_ledger(self, tmp_path):
        led = Ledger(tmp_path / "l.jsonl")
        for i, name in enumerate(("adaptive", "adaptive", "kernels")):
            bench = tmp_path / f"BENCH_{name}_{i}.json"
            bench.write_text(json.dumps(
                {"meta": {"bench": name}, "criterion": {"achieved": 1.0 + i}}
            ))
            led.ingest_bench(bench)
        recs = led.records()
        assert baseline_from_ledger(recs)["criterion.achieved"] == [
            1.0, 2.0, 3.0
        ]
        assert baseline_from_ledger(recs, name="kernels")[
            "criterion.achieved"
        ] == [3.0]
        assert baseline_from_ledger(recs, window=1)["criterion.achieved"] == [
            3.0
        ]


class TestBenchRunnerLedger:
    def test_collect_telemetry_inherits_ambient_ledger(self, tmp_path):
        """A bench sweep under session(ledger=...) still appends records."""
        from repro.bench.runner import run_bc_per_vertex
        from repro.graphs import suite

        entry = suite.get("mycielskian15")
        with obs.session(trace=False, ledger=tmp_path / "l.jsonl"):
            row = run_bc_per_vertex(entry, systems=(), verify=False,
                                    collect_telemetry=True)
        assert row.telemetry is not None
        (rec,) = read_ledger(tmp_path / "l.jsonl")
        assert rec["kind"] == "bc"
        assert rec["graph"]["name"] == "mycielskian15"
