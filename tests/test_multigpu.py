"""Multi-GPU scheduling, link modeling, and reduction-accounting tests.

Covers the PR 9 fixes -- active-device-only reduction accounting,
parallel efficiency over active devices, full-source-list validation --
plus the cost-model scheduler: deterministic placement, bit-identical
``bc`` across device counts and schedulers, the round-robin regret audit,
and the modeled link's telemetry/roofline integration.
"""

import numpy as np
import pytest

from repro.core.multigpu import multi_gpu_bc
from repro.core.schedule import (
    estimate_task_costs,
    partition_sources,
    schedule_tasks,
)
from repro.graphs.graph import Graph
from repro.gpusim.device import TITAN_XP, Device
from repro.gpusim.link import Link
from repro.obs import session as obs_session
from repro.obs.roofline import classify_launch
from tests.conftest import random_graph


def skewed_graph(n_frags: int = 12, seed: int = 5) -> Graph:
    """One dense component plus tiny fragments: wildly skewed source costs.

    A source inside the dense component traverses hundreds of edges over
    several levels; a fragment source finishes in one.  With the expensive
    sources aligned on the round-robin period, the static deal piles them
    all onto device 0 -- the scenario the cost scheduler exists for.
    """
    big = random_graph(48, 0.12, directed=False, seed=seed, connected_chain=True)
    edges = list(zip(big.src.tolist(), big.dst.tolist()))
    n = big.n
    for _ in range(n_frags):
        edges.append((n, n + 1))
        n += 2
    return Graph.from_edges(edges, n, directed=False)


def skewed_sources(g: Graph, n_devices: int, n_big: int = 6) -> list:
    """Expensive sources at positions 0 mod k: worst case for round-robin."""
    big = list(range(n_big))
    tiny = list(range(48, 48 + n_big * 2 * (n_devices - 1), 2))
    out = []
    ti = iter(tiny)
    for b in big:
        out.append(b)
        for _ in range(n_devices - 1):
            out.append(next(ti))
    return out


class TestReductionAccounting:
    def test_only_active_devices_transfer(self):
        g = random_graph(40, 0.1, directed=False, seed=1)
        _, mg = multi_gpu_bc(g, n_devices=8, sources=[0, 1])
        assert len(mg.transfer_times_s) == 8
        assert sum(1 for t in mg.transfer_times_s if t > 0) == 2
        per = TITAN_XP.link_latency_s + g.n * 8 / (
            TITAN_XP.link_bandwidth_gbs * 1e9
        )
        assert mg.reduction_time_s == pytest.approx(2 * per)

    def test_reduction_scales_with_active_not_total(self):
        g = random_graph(40, 0.1, directed=False, seed=1)
        _, mg2 = multi_gpu_bc(g, n_devices=2, sources=[0, 1])
        _, mg8 = multi_gpu_bc(g, n_devices=8, sources=[0, 1])
        # same two partial vectors cross the links either way
        assert mg8.reduction_time_s == pytest.approx(mg2.reduction_time_s)

    def test_single_device_single_transfer(self):
        g = random_graph(30, 0.1, directed=False, seed=2)
        _, mg = multi_gpu_bc(g, n_devices=1, sources=[0, 1, 2])
        assert sum(1 for t in mg.transfer_times_s if t > 0) == 1


class TestParallelEfficiency:
    def test_efficiency_over_active_devices(self):
        g = random_graph(60, 0.08, directed=False, seed=3)
        _, mg = multi_gpu_bc(g, n_devices=8, sources=[0, 1])
        assert mg.active_devices == 2
        assert mg.idle_devices == 6
        # two near-equal sources on two devices: efficiency must reflect the
        # devices that worked, not be deflated ~4x by the six idle ones
        assert mg.parallel_efficiency > 0.5

    def test_idle_devices_zero_when_saturated(self):
        g = random_graph(50, 0.1, directed=False, seed=4)
        _, mg = multi_gpu_bc(g, n_devices=4)
        assert mg.idle_devices == 0
        assert mg.active_devices == 4

    def test_empty_graph_efficiency_guarded(self):
        g = Graph.from_edges([(0, 1)], 2, directed=False)
        _, mg = multi_gpu_bc(g, n_devices=2, sources=[0])
        assert 0.0 <= mg.parallel_efficiency <= 1.0


class TestSourceValidation:
    def test_duplicates_rejected_at_entry(self):
        g = random_graph(30, 0.1, directed=False, seed=5)
        # duplicates land on *different* devices under round-robin -- the
        # per-slice checks the old code relied on could never see them
        with pytest.raises(ValueError, match="duplicate"):
            multi_gpu_bc(g, n_devices=2, sources=[0, 1, 0])

    def test_out_of_range_rejected(self):
        g = random_graph(30, 0.1, directed=False, seed=5)
        with pytest.raises(ValueError, match="out of range"):
            multi_gpu_bc(g, n_devices=2, sources=[0, 99])

    def test_unknown_scheduler_rejected(self):
        g = random_graph(30, 0.1, directed=False, seed=5)
        with pytest.raises(ValueError, match="scheduler"):
            multi_gpu_bc(g, n_devices=2, scheduler="greedy")


class TestBitIdentity:
    def test_identical_across_device_counts_and_schedulers(self):
        g = skewed_graph()
        ref, _ = multi_gpu_bc(g, n_devices=1, batch_size=4)
        for k in (2, 3, 4):
            for sched in ("cost", "roundrobin"):
                res, _ = multi_gpu_bc(
                    g, n_devices=k, batch_size=4, scheduler=sched
                )
                assert np.array_equal(res.bc, ref.bc), (k, sched)

    def test_identical_on_directed_subset(self):
        g = random_graph(70, 0.06, directed=True, seed=7)
        srcs = list(range(0, 70, 3))
        ref, _ = multi_gpu_bc(g, n_devices=1, sources=srcs, batch_size=8)
        for k in (2, 4):
            res, _ = multi_gpu_bc(g, n_devices=k, sources=srcs, batch_size=8)
            assert np.array_equal(res.bc, ref.bc), k

    def test_placement_deterministic(self):
        g = skewed_graph()
        srcs = skewed_sources(g, 2)
        runs = [
            multi_gpu_bc(g, n_devices=2, sources=srcs)[1].placements
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestScheduler:
    def test_roundrobin_reproduces_static_deal(self):
        assert schedule_tasks([1.0] * 5, 2, "roundrobin") == [0, 1, 0, 1, 0]

    def test_lpt_balances_skewed_costs(self):
        # one heavy task + four light: round-robin puts heavy + 2 light on
        # device 0; LPT isolates the heavy task
        placements = schedule_tasks([8.0, 1.0, 1.0, 1.0, 1.0], 2, "cost")
        heavy_dev = placements[0]
        assert all(p != heavy_dev for p in placements[1:])

    def test_transfer_cost_keeps_tiny_tasks_together(self):
        # opening a second device costs a transfer; with task costs far below
        # it, everything should stay on one device
        placements = schedule_tasks(
            [1e-9] * 4, 4, "cost", transfer_s=1e-3
        )
        assert len(set(placements)) == 1

    def test_partition_sources_contiguous(self):
        assert partition_sources([3, 1, 4, 1, 5], 2) == [(3, 1), (4, 1), (5,)]
        with pytest.raises(ValueError):
            partition_sources([1], 0)

    def test_estimated_costs_reflect_component_size(self):
        g = skewed_graph()
        tasks = estimate_task_costs(
            g, [(0,), (48,)], spec=TITAN_XP, algorithm="sccsc", batch=1
        )
        # a dense-component source must be modeled costlier than a
        # two-vertex fragment source (more traversal levels, more edges)
        assert tasks[0].est_cost_s > 1.9 * tasks[1].est_cost_s

    def test_cost_beats_roundrobin_on_skewed_graph(self):
        g = skewed_graph()
        srcs = skewed_sources(g, 2)
        _, rr = multi_gpu_bc(g, n_devices=2, sources=srcs,
                             scheduler="roundrobin")
        _, cm = multi_gpu_bc(g, n_devices=2, sources=srcs, scheduler="cost")
        assert cm.makespan_s < rr.makespan_s

    def test_audit_attributes_the_win(self):
        g = skewed_graph()
        srcs = skewed_sources(g, 2)
        _, cm = multi_gpu_bc(g, n_devices=2, sources=srcs, scheduler="cost")
        a = cm.audit
        assert a.scheduler == "cost"
        assert a.n_devices == 2
        assert len(a.tasks) == len(srcs)  # batch_size=1 -> one task/source
        assert a.makespan_s == pytest.approx(cm.makespan_s)
        assert a.baseline_makespan_s > a.makespan_s
        assert a.speedup > 1.0
        assert a.regret_s == pytest.approx(
            a.baseline_makespan_s - a.makespan_s
        )
        d = a.to_dict()
        assert d["speedup"] == pytest.approx(a.speedup, rel=1e-3)
        assert len(d["worst_tasks"]) <= 10

    def test_roundrobin_audit_is_self_comparison(self):
        g = random_graph(40, 0.1, directed=False, seed=9)
        _, mg = multi_gpu_bc(g, n_devices=2, sources=list(range(6)),
                             scheduler="roundrobin")
        assert mg.audit.speedup == pytest.approx(1.0)


class TestLinkModel:
    def test_transfer_time_closed_form(self):
        link = Link(Device())
        per = link.transfer_time_s(1000)
        assert per == pytest.approx(
            TITAN_XP.link_latency_s + 1000 / (TITAN_XP.link_bandwidth_gbs * 1e9)
        )
        launch = link.transfer(1000)
        assert launch.time_s == pytest.approx(per)
        assert link.total_bytes == 1000

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            Link(Device()).transfer(-1)

    def test_bulk_transfer_classified_link_bound(self):
        launch = Link(Device()).transfer(20000 * 8)
        assert classify_launch(launch) == "link"

    def test_tiny_transfer_classified_overhead_bound(self):
        launch = Link(Device()).transfer(8)
        assert classify_launch(launch) == "overhead"

    def test_link_telemetry_counters(self):
        g = random_graph(40, 0.1, directed=False, seed=11)
        with obs_session() as tel:
            multi_gpu_bc(g, n_devices=2, sources=[0, 1, 2, 3])
        snap = tel.metrics.counter("link_transfers").value
        assert snap == 2
        assert tel.metrics.counter("link_transfer_bytes").value == 2 * g.n * 8
        assert len(tel.schedule_audits) == 1

    def test_transfer_recorded_on_device_profiler(self):
        g = random_graph(30, 0.1, directed=False, seed=12)
        _, mg = multi_gpu_bc(g, n_devices=2, sources=[0, 1])
        for dev in mg.devices:
            names = [ln.stats.name for ln in dev.profiler.launches]
            assert names.count("link_transfer") == 1
