"""Edit-script conformance layer (DESIGN.md §14): fuzzer determinism, the
dynamic config registry, zero-divergence runs, the two-dimensional shrink,
the golden edit corpus, and the headline demonstration -- an injected
off-by-one in the affected-source predicate is caught with a shrunk
witness of <= 10 vertices and <= 3 edits."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.core.incremental as incremental
from repro.cli import main
from repro.conformance import (
    EditScriptFuzzer,
    bless_golden_edits,
    check_golden_edits,
    check_incremental_edit_identity,
    dynamic_configs,
    replay_edit_script,
    run_edit_conformance,
    shrink_edit_counterexample,
)
from repro.conformance.harness import counterexample_segments
from repro.graphs import io
from repro.graphs.graph import Graph
from tests.conftest import random_graph


def _n_edits(segments) -> int:
    return sum(len(a) + len(r) for a, r in segments)


class TestEditScriptFuzzer:
    def test_deterministic_per_seed_and_index(self):
        a, b = EditScriptFuzzer(3).case(7), EditScriptFuzzer(3).case(7)
        assert a.recipe == b.recipe
        assert np.array_equal(a.graph.src, b.graph.src)
        assert a.segments == b.segments
        assert a.sources == b.sources

    def test_distinct_seeds_diverge(self):
        cases_a = [c.segments for c in EditScriptFuzzer(0).cases(8)]
        cases_b = [c.segments for c in EditScriptFuzzer(1).cases(8)]
        assert cases_a != cases_b

    def test_all_recipes_covered_and_nonempty(self):
        from repro.conformance.fuzzer import _EDIT_RECIPES

        cases = list(EditScriptFuzzer(0).cases(len(_EDIT_RECIPES)))
        assert len({c.recipe for c in cases}) == len(_EDIT_RECIPES)
        for c in cases:
            assert c.segments, c.recipe
            assert 1 <= _n_edits(c.segments) <= 32

    def test_replay_reference_matches_apply_edits(self):
        for case in EditScriptFuzzer(5).cases(16):
            g = case.graph
            for k in range(len(case.segments)):
                g = g.apply_edits(added=case.segments[k][0],
                                  removed=case.segments[k][1])
                ref = replay_edit_script(case.graph, case.segments[: k + 1])
                assert g.n == ref.n
                np.testing.assert_array_equal(g.src, ref.src)
                np.testing.assert_array_equal(g.dst, ref.dst)


class TestDynamicConfigs:
    def test_registry_spans_the_kernel_batch_grid(self):
        configs = dynamic_configs()
        assert len(configs) >= 8
        kernels = {c.axes["kernel"] for c in configs}
        assert {"sccooc", "sccsc", "veccsc", "adaptive", "pullcsc",
                "tcspmm"} <= kernels
        assert {c.axes["batch"] for c in configs} >= {1, 4, "auto"}
        assert any(c.axes["telemetry"] for c in configs)
        assert len({c.name for c in configs}) == len(configs)


class TestRunEditConformance:
    def test_clean_run_has_zero_divergences(self):
        report = run_edit_conformance(seed=0, budget=8)
        assert report.ok, [d.detail for d in report.divergences]
        assert report.cases_run == 8
        assert report.checks_run > 8

    def test_identity_check_passes_on_well_formed_script(self):
        g = random_graph(12, 0.2, directed=False, seed=9)
        segments = ((((0, 5), (1, 7)), ((int(g.src[0]), int(g.dst[0])),)),)
        assert check_incremental_edit_identity(g, segments) is None

    def test_identity_check_raises_on_malformed_segments(self):
        g = random_graph(12, 0.2, directed=False, seed=9)
        with pytest.raises(Exception):
            check_incremental_edit_identity(g, ((("bad",),),))


class TestInjectedPredicateBug:
    def test_off_by_one_is_caught_with_tiny_witness(self, monkeypatch):
        orig = incremental.edit_affected_mask

        def buggy(levels, sigma, op, u, v, *, directed):
            if op == "add" and u < levels.shape[1] and v < levels.shape[1]:
                ru, rv = sigma[:, u] > 0, sigma[:, v] > 0
                # Off-by-one: misses inserts that tie the depth frontier.
                return ru & (~rv | (levels[:, v] > levels[:, u] + 1))
            return orig(levels, sigma, op, u, v, directed=directed)

        monkeypatch.setattr(incremental, "edit_affected_mask", buggy)
        configs = [c for c in dynamic_configs() if c.name == "dyn/adaptive/b1"]
        report = run_edit_conformance(configs, seed=0, budget=30)
        assert not report.ok
        mismatches = [d for d in report.divergences
                      if d.kind == "edit-mismatch"]
        assert mismatches
        for div in mismatches:
            ce = div.counterexample
            assert ce["n"] <= 10, ce
            segments = counterexample_segments(ce)
            assert _n_edits(segments) <= 3, ce


class TestShrink:
    def test_shrinks_both_edits_and_vertices(self):
        g = random_graph(30, 0.15, directed=False, seed=11)
        segments = (
            (((0, 5), (1, 7), (2, 9)), ((3, 4),)),
            (((5, 20),), ((6, 8), (9, 12))),
        )

        def predicate(graph, segs):
            # "Fails" whenever any insertion survives (label-independent,
            # so both shrink dimensions can bite).
            return any(seg[0] for seg in segs)

        sg, ssegs = shrink_edit_counterexample(g, segments, predicate)
        assert _n_edits(ssegs) == 1
        assert sg.n <= 2  # only the surviving edit's endpoints remain

    def test_non_failing_input_is_returned_unchanged(self):
        g = random_graph(10, 0.2, directed=False, seed=12)
        segments = ((((0, 1),), ()),)
        sg, ssegs = shrink_edit_counterexample(
            g, segments, lambda graph, segs: False)
        assert sg is g and ssegs == segments


class TestGoldenEdits:
    def test_bless_check_roundtrip(self, tmp_path):
        written = bless_golden_edits(tmp_path)
        assert len(written) == 6
        rec = json.loads(written[0].read_text())
        assert rec["schema"] == "repro/conformance/golden-edits/v1"
        assert rec["segments"] and "affected_sources" in rec
        divs = check_golden_edits(dynamic_configs()[:3], tmp_path)
        assert divs == []

    def test_missing_corpus_reports_golden_missing(self, tmp_path):
        divs = check_golden_edits(dynamic_configs()[:1], tmp_path / "empty")
        assert len(divs) == 1 and divs[0].kind == "golden-missing"

    def test_tampered_vector_is_caught(self, tmp_path):
        written = bless_golden_edits(tmp_path)
        rec = json.loads(written[0].read_text())
        rec["bc"][0] += 0.5
        written[0].write_text(json.dumps(rec))
        divs = check_golden_edits(dynamic_configs()[:1], tmp_path)
        assert any(d.kind == "golden-mismatch" for d in divs)

    def test_repo_corpus_is_blessed_and_reproducible(self):
        # The checked-in corpus must verify against the live code.
        divs = check_golden_edits(
            [c for c in dynamic_configs() if c.name == "dyn/adaptive/b1"])
        assert divs == [], [d.detail for d in divs]


class TestCLI:
    def test_update_subcommand(self, tmp_path, capsys):
        g = random_graph(24, 0.12, directed=False, seed=13)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        stats = tmp_path / "stats.json"
        assert main(["update", str(path), "--add", "0,5", "--remove",
                     f"{int(g.src[0])},{int(g.dst[0])}",
                     "--stats-json", str(stats)]) == 0
        out = capsys.readouterr().out
        assert "mode=" in out and "affected" in out
        rec = json.loads(stats.read_text())
        assert rec["update_mode"] in ("incremental", "full")
        assert rec["affected_sources"] + rec["skipped_sources"] == rec["sources"]

    def test_update_requires_an_edit(self, tmp_path, capsys):
        g = random_graph(10, 0.2, directed=False, seed=14)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["update", str(path)]) == 2
        assert "--add" in capsys.readouterr().err

    def test_update_rejects_malformed_edge(self):
        with pytest.raises(SystemExit):
            main(["update", "whatever.mtx", "--add", "0:5"])

    def test_conformance_recipes_edits(self, tmp_path, capsys):
        report = tmp_path / "edits.jsonl"
        assert main(["conformance", "--recipes", "edits", "--seed", "0",
                     "--budget", "4", "--config", "dyn/adaptive/b1",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "conformance[edits]" in out
        assert "bit-identical" in out
        records = [json.loads(line) for line in report.read_text().splitlines()]
        assert records[0]["recipes"] == "edits"
        assert records[-1]["ok"] is True

    def test_conformance_recipes_all_runs_both_layers(self, capsys):
        assert main(["conformance", "--recipes", "all", "--seed", "0",
                     "--budget", "2", "--config", "adaptive/b1",
                     "--skip-golden"]) == 0
        out = capsys.readouterr().out
        assert "conformance[graphs]" in out and "conformance[edits]" in out


def _final_graph(case) -> Graph:
    return replay_edit_script(case.graph, case.segments)


class TestRecipeShapes:
    """Every targeted recipe actually produces the structure it claims."""

    def _cases_by_recipe(self, prefix: str, budget: int = 32):
        return [c for c in EditScriptFuzzer(0).cases(budget)
                if c.recipe.startswith(prefix)]

    def test_growth_recipe_grows(self):
        for case in self._cases_by_recipe("edits-growth"):
            assert _final_graph(case).n > case.graph.n

    def test_noop_recipe_preserves_edge_set(self):
        for case in self._cases_by_recipe("edits-noop"):
            final = replay_edit_script(case.graph, case.segments[:1])
            assert final.m == case.graph.m

    def test_delete_recipes_only_delete(self):
        for case in self._cases_by_recipe("edits-delete"):
            assert all(not added for added, _ in case.segments)
