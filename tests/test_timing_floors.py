"""Tests of the timing-model floors: atomic serialisation, critical warp
path, dtype factors and the footprint-pressure miss model."""

import numpy as np
import pytest

from repro.gpusim import warp as W
from repro.gpusim.device import Device, DeviceSpec, TITAN_XP
from repro.gpusim.kernel import KernelStats
from repro.graphs.graph import Graph
from repro.spmv import sccooc_spmv, sccsc_spmv, veccsc_spmv


class TestSerialFloors:
    def test_atomic_chain_floors_time(self, device):
        s = KernelStats(name="k", serial_updates=1_000_000)
        launch = device.launch(s)
        expected = 1_000_000 * TITAN_XP.atomic_serialization_s
        assert launch.serial_time_s == pytest.approx(expected)
        assert launch.exec_time_s >= expected

    def test_critical_warp_floors_time(self, device):
        cycles = int(TITAN_XP.clock_ghz * 1e9)  # one second of one warp
        s = KernelStats(name="k", critical_warp_cycles=cycles)
        launch = device.launch(s)
        assert launch.exec_time_s == pytest.approx(1.0)

    def test_floors_do_not_add(self, device):
        """serial is a max of the two chains, not a sum."""
        s = KernelStats(
            name="k",
            serial_updates=100,
            critical_warp_cycles=10,
        )
        launch = device.launch(s)
        expected = max(
            100 * TITAN_XP.atomic_serialization_s,
            10 / (TITAN_XP.clock_ghz * 1e9),
        )
        assert launch.serial_time_s == pytest.approx(expected)

    def test_hub_scatter_carries_serial_chain(self, device):
        """A 1000-in-degree hub must show up as a 1000-long atomic chain."""
        n = 1100
        src = np.arange(1, 1001)
        dst = np.zeros(1000, dtype=np.int64)
        g = Graph(src, dst, n, directed=True)
        x = np.ones(n, dtype=np.int32)
        _, launch = sccooc_spmv(device, g.to_cooc(), x)
        assert launch.stats.serial_updates == 1000

    def test_hub_column_carries_critical_path(self, device):
        n = 1100
        src = np.arange(1, 1001)
        dst = np.zeros(1000, dtype=np.int64)
        g = Graph(src, dst, n, directed=True)
        x = np.ones(n, dtype=np.int32)
        _, sc = sccsc_spmv(device, g.to_csc(), x)
        _, ve = veccsc_spmv(device, g.to_csc(), x)
        # the scalar kernel's slowest warp scans the whole hub column; the
        # vector kernel splits it over 32 lanes
        assert sc.stats.critical_warp_cycles > 10 * ve.stats.critical_warp_cycles


class TestDtypeFactors:
    def test_factor_values(self):
        assert W.dtype_cycle_factor(np.int32) == 1
        assert W.dtype_cycle_factor(np.int64) == 1
        assert W.dtype_cycle_factor(np.float32) == 2
        assert W.dtype_cycle_factor(np.float64) == 6

    def test_float64_scatter_slower_on_hub(self, device):
        n = 1100
        src = np.arange(1, 1001)
        dst = np.zeros(1000, dtype=np.int64)
        g = Graph(src, dst, n, directed=True)
        _, li = sccooc_spmv(device, g.to_cooc(), np.ones(n, dtype=np.int32))
        _, lf = sccooc_spmv(device, g.to_cooc(), np.ones(n, dtype=np.float64))
        assert lf.stats.serial_updates == 6 * li.stats.serial_updates


class TestPressureMiss:
    def test_small_footprint_fully_cached(self):
        # a 4 KB array: scalar gathers stay near the footprint bound
        txn = W.scalar_gather_transactions(100_000, 1000)
        assert txn <= -(-1000 * 4 // 32)

    def test_large_footprint_pays_miss_rate(self):
        words = 2 * W.L2_BYTES  # 8 MB of 4-byte words >> L2
        txn = W.scalar_gather_transactions(1_000_000, words)
        assert txn >= 0.25 * 1_000_000

    def test_pressure_is_monotone(self):
        txns = [
            W.scalar_gather_transactions(500_000, words)
            for words in (10_000, 200_000, 1_000_000, 4_000_000)
        ]
        assert txns == sorted(txns)


class TestScaledL2Device:
    def test_spec_carries_l2(self):
        spec = DeviceSpec(l2_bytes=1024)
        assert Device(spec).spec.l2_bytes == 1024

    def test_scaled_device_spec_helper(self):
        from repro.bench.runner import scaled_device_spec
        from repro.graphs import suite

        full = suite.get("mark3jac060sc")       # full-scale row
        assert scaled_device_spec(full).l2_bytes == TITAN_XP.l2_bytes
        scaled = suite.get("GAP-twitter")       # 400k of 62M vertices
        spec = scaled_device_spec(scaled)
        assert spec.l2_bytes < TITAN_XP.l2_bytes / 50
        suite.clear_graph_cache()

    def test_smaller_l2_never_speeds_up_spmv(self, rng):
        from tests.conftest import random_graph

        g = random_graph(400, 0.05, directed=True, seed=5)
        x = rng.integers(0, 3, g.n).astype(np.int32)
        t_big = sccsc_spmv(Device(), g.to_csc(), x)[1].exec_time_s
        t_small = sccsc_spmv(Device(DeviceSpec(l2_bytes=256)), g.to_csc(), x)[1].exec_time_s
        assert t_small >= t_big
