"""Regression-gate tests: baselines, flattening, bootstrap CI, perf-diff.

Covers the full gate path: bench JSON -> flatten -> bootstrap comparison ->
markdown/exit code, including the end-to-end ``REPRO_INJECT_SLOWDOWN``
drill that the ``make perf-gate`` acceptance criterion relies on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.baseline import (
    BASELINE_SCHEMA,
    flatten_metrics,
    load_bench_json,
    make_baseline,
    write_baseline,
)
from repro.cli import main
from repro.core.bc import turbo_bc
from repro.obs.regress import (
    bootstrap_ratio_ci,
    compare_metrics,
    format_report,
    metric_direction,
)
from tests.conftest import random_graph


class TestBaseline:
    def test_round_trip(self, tmp_path):
        doc = make_baseline(
            "t", [{"graph": "a", "runtime_ms": 1.5}], meta={"rev": "x"}
        )
        assert doc["schema"] == BASELINE_SCHEMA
        p = tmp_path / "b.json"
        write_baseline(p, doc)
        assert load_bench_json(p) == doc
        # stable formatting: newline-terminated, key-sorted
        text = p.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_rows_with_to_dict(self, tmp_path):
        class Row:
            def to_dict(self):
                return {"name": "k", "gpu_time_s": 2.0}

        doc = make_baseline("t", [Row()])
        assert doc["rows"] == [{"name": "k", "gpu_time_s": 2.0}]

    def test_load_rejects_non_object(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_bench_json(p)


class TestFlatten:
    def test_identity_keyed_lists(self):
        doc = {
            "schema": "x",  # skipped
            "meta": {"rev": "abc"},  # skipped
            "graphs": [
                {
                    "graph": "mawi",
                    "n": 100,
                    "rows": [
                        {"algorithm": "sccsc", "gpu_time_s": 0.5},
                        {"algorithm": "adaptive", "gpu_time_s": 0.25},
                    ],
                },
            ],
        }
        flat = flatten_metrics(doc)
        assert flat["graphs[mawi].rows[sccsc].gpu_time_s"] == [0.5]
        assert flat["graphs[mawi].rows[adaptive].gpu_time_s"] == [0.25]
        assert flat["graphs[mawi].n"] == [100.0]
        assert not any(k.startswith(("schema", "meta")) for k in flat)

    def test_reordered_rows_pair_up(self):
        a = {"rows": [{"name": "x", "v_ms": 1.0}, {"name": "y", "v_ms": 2.0}]}
        b = {"rows": [{"name": "y", "v_ms": 2.0}, {"name": "x", "v_ms": 1.0}]}
        assert flatten_metrics(a) == flatten_metrics(b)

    def test_sample_lists_and_skipped_types(self):
        flat = flatten_metrics({
            "samples_ms": [1.0, 2.0, 3.0],
            "ok": True,  # bool skipped
            "label": "hi",  # string skipped
            "nested": {"count": 4},
        })
        assert flat == {"samples_ms": [1.0, 2.0, 3.0], "nested.count": [4.0]}

    def test_real_bench_adaptive_shape(self):
        """The actual BENCH_adaptive.json payload shape flattens usefully."""
        payload = {
            "min_speedup": 1.15,
            "smoke": False,
            "graphs": [{
                "graph": "mawi", "n": 10, "m": 20, "n_sources": 2,
                "rows": [
                    {"algorithm": "sccsc", "gpu_time_s": 0.5,
                     "kernel_launches": 40},
                    {"algorithm": "adaptive", "gpu_time_s": 0.2,
                     "kernel_launches": 38,
                     "kernel_mix": {"forward": {"sccsc": 3}}},
                ],
                "best_static": "sccsc",
                "speedup_vs_best_static": 2.5,
                "alloc_events": {"one_source": 7, "2_sources": 7},
            }],
            "best_speedup": {"mawi": 2.5},
        }
        flat = flatten_metrics(payload)
        assert "graphs[mawi].rows[adaptive].gpu_time_s" in flat
        assert "graphs[mawi].speedup_vs_best_static" in flat
        assert "best_speedup.mawi" in flat


class TestDirection:
    @pytest.mark.parametrize("name,expected", [
        ("gpu_time_s", "lower"),
        ("runtime_ms", "lower"),
        ("kernel_launches", "lower"),
        ("graphs[mawi].rows[adaptive].gpu_time_s", "lower"),
        ("mteps", "higher"),
        ("speedup_vs_best_static", "higher"),
        ("cases_per_s", "higher"),  # "per_s" must win over "_s"
        ("dram_gbs", "higher"),
        ("occupancy_pct", "higher"),
        ("total_regret_us", "lower"),
        # the mem-telemetry family (DESIGN.md §13): byte peaks, OOM and
        # fallback counts, fragmentation gauges all regress upward
        ("mem_peak_bytes", "lower"),
        ("graphs[mawi].rows[adaptive].mem_peak_bytes", "lower"),
        ("mem_oom_events", "lower"),
        ("mem_arena_fallbacks{reason=fragmented}", "lower"),
        ("mem_arena_holes", "lower"),
        ("mem_arena_frag_ratio", "lower"),
        ("n", "none"),
        ("nnz_frontier", "none"),
    ])
    def test_heuristics(self, name, expected):
        assert metric_direction(name) == expected


class TestBootstrapCI:
    def test_deterministic_pair_is_zero_width(self):
        lo, hi = bootstrap_ratio_ci(np.array([2.0]), np.array([2.0]))
        assert lo == hi == 1.0

    def test_ci_contains_true_ratio(self):
        rng = np.random.default_rng(7)
        old = rng.normal(100.0, 5.0, size=40)
        new = old * 1.5 + rng.normal(0.0, 1.0, size=40)
        lo, hi = bootstrap_ratio_ci(old, new, seed=1)
        assert lo < 1.5 < hi
        assert hi - lo < 0.2  # paired resampling keeps it tight

    def test_seed_reproducible(self):
        old = np.array([1.0, 2.0, 3.0])
        new = np.array([1.1, 2.2, 3.1])
        assert bootstrap_ratio_ci(old, new, seed=5) == bootstrap_ratio_ci(
            old, new, seed=5
        )

    def test_zero_over_zero_is_no_change(self):
        lo, hi = bootstrap_ratio_ci(np.array([0.0]), np.array([0.0]))
        assert lo == hi == 1.0


class TestCompare:
    def test_clean_pair_passes(self):
        flat = {"a.gpu_time_s": [1.0], "b.mteps": [50.0], "n": [5.0]}
        report = compare_metrics(flat, dict(flat))
        assert report.passed
        assert report.regressions == []
        assert {c.verdict for c in report.comparisons} == {"ok", "info"}

    def test_slowdown_is_regression_and_direction_aware(self):
        old = {"gpu_time_s": [1.0], "mteps": [100.0]}
        new = {"gpu_time_s": [2.0], "mteps": [50.0]}
        report = compare_metrics(old, new)
        assert not report.passed
        assert {c.name for c in report.regressions} == {"gpu_time_s", "mteps"}

    def test_speedup_is_improvement(self):
        report = compare_metrics({"gpu_time_s": [2.0]}, {"gpu_time_s": [1.0]})
        assert report.passed
        assert [c.name for c in report.improvements] == ["gpu_time_s"]

    def test_noise_floor_suppresses_small_moves(self):
        report = compare_metrics(
            {"gpu_time_s": [1.0]}, {"gpu_time_s": [1.04]}, noise_floor=0.05
        )
        assert report.passed and not report.improvements
        report = compare_metrics(
            {"gpu_time_s": [1.0]}, {"gpu_time_s": [1.04]}, noise_floor=0.01
        )
        assert not report.passed

    def test_directionless_metrics_never_fail(self):
        report = compare_metrics({"nnz_frontier": [2.0]}, {"nnz_frontier": [64.0]})
        assert report.passed
        assert report.comparisons[0].verdict == "info"

    def test_disjoint_metrics_reported(self):
        report = compare_metrics({"a_ms": [1.0]}, {"b_ms": [1.0]})
        assert report.only_old == ["a_ms"] and report.only_new == ["b_ms"]
        assert report.comparisons == []

    def test_format_report_headline(self):
        report = compare_metrics({"t_ms": [1.0]}, {"t_ms": [3.0]})
        text = format_report(report, old_name="base.json", new_name="new.json")
        assert "**FAIL**" in text and "1 regression(s)" in text
        assert "| `t_ms` | 1 | 3 | 3.000x |" in text
        clean = format_report(compare_metrics({"t_ms": [1.0]}, {"t_ms": [1.0]}))
        assert "**PASS**" in clean


def _run_stats_doc(graph, *, monkeypatch=None, slowdown=None):
    if slowdown is not None:
        monkeypatch.setenv("REPRO_INJECT_SLOWDOWN", slowdown)
    res = turbo_bc(graph, sources=[0, 1], algorithm="adaptive")
    if slowdown is not None:
        monkeypatch.delenv("REPRO_INJECT_SLOWDOWN")
    return {
        "graphs": [{
            "graph": "g",
            "rows": [{
                "algorithm": "adaptive",
                "gpu_time_s": res.stats.gpu_time_s,
                "kernel_launches": res.stats.kernel_launches,
            }],
        }],
    }


class TestInjectedSlowdownGate:
    """The acceptance drill: a modeled 2x slowdown must fail the gate."""

    def test_injected_slowdown_flags_and_clean_stays_green(
        self, tmp_path, monkeypatch, capsys
    ):
        # big enough that in-kernel time is a real share of the total --
        # tiny graphs are pure launch overhead, which the injection leaves
        # alone (as real slow kernel code would)
        g = random_graph(3000, 0.05, directed=False, seed=9)
        base = _run_stats_doc(g)
        clean = _run_stats_doc(g)
        slow = _run_stats_doc(g, monkeypatch=monkeypatch, slowdown="2.0")

        assert clean == base  # the model is deterministic
        assert slow["graphs"][0]["rows"][0]["gpu_time_s"] > (
            base["graphs"][0]["rows"][0]["gpu_time_s"]
        )
        # results must be untouched by the injection -- only the clock moves
        monkeypatch.setenv("REPRO_INJECT_SLOWDOWN", "2.0")
        bc_slow = turbo_bc(g, sources=[0, 1], algorithm="adaptive").bc
        monkeypatch.delenv("REPRO_INJECT_SLOWDOWN")
        bc_base = turbo_bc(g, sources=[0, 1], algorithm="adaptive").bc
        assert np.array_equal(bc_slow, bc_base)

        old_p = tmp_path / "old.json"
        new_p = tmp_path / "new.json"
        report_p = tmp_path / "report.md"
        json_p = tmp_path / "verdict.json"
        old_p.write_text(json.dumps(base))

        # clean pair -> exit 0, PASS
        new_p.write_text(json.dumps(clean))
        assert main(["perf-diff", str(old_p), str(new_p)]) == 0
        assert "**PASS**" in capsys.readouterr().out

        # injected slowdown -> exit 1, the slowed metric named
        new_p.write_text(json.dumps(slow))
        rc = main([
            "perf-diff", str(old_p), str(new_p),
            "--report", str(report_p), "--json", str(json_p),
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "**FAIL**" in out
        assert "gpu_time_s" in out
        verdict = json.loads(json_p.read_text())
        assert verdict["schema"] == "repro.obs/perf-diff/v1"
        assert verdict["passed"] is False
        assert any(
            "gpu_time_s" in c["name"] for c in verdict["regressions"]
        )
        assert "**FAIL**" in report_p.read_text()

    def test_per_kernel_slowdown_syntax(self, monkeypatch):
        g = random_graph(50, 0.15, directed=False, seed=12)
        base = turbo_bc(g, sources=[0], algorithm="veccsc")
        monkeypatch.setenv("REPRO_INJECT_SLOWDOWN", "veccsc_spmv:3.0")
        slow = turbo_bc(g, sources=[0], algorithm="veccsc")
        assert slow.stats.gpu_time_s > base.stats.gpu_time_s
        assert np.array_equal(slow.bc, base.bc)


class TestPerfDiffCLI:
    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        p = tmp_path / "a.json"
        p.write_text("{}")
        assert main(["perf-diff", str(p), str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unparseable_json_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        ok = tmp_path / "ok.json"
        ok.write_text('{"t_ms": 1.0}')
        assert main(["perf-diff", str(bad), str(ok)]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_disjoint_files_are_usage_error(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text('{"x_ms": 1.0}')
        b = tmp_path / "b.json"
        b.write_text('{"y_ms": 1.0}')
        assert main(["perf-diff", str(a), str(b)]) == 2
        assert "share no numeric metrics" in capsys.readouterr().err
