"""Incremental BC on dynamic graphs (DESIGN.md §14).

The headline claim under test: every ``DynamicBC.update`` chain is
*bit-identical* (``array_equal``, never ``allclose``) to a from-scratch
``turbo_bc`` on the edited graph with the same configuration.  Around it:
the affected-source predicate proven sound against per-source brute force,
the structured zero-affected identities (same-depth insert, non-DAG
delete), the churn and overflow full-recompute fallbacks, graph growth in
both source modes, cache invalidation across edits, and the observability
contract (update spans + ``incremental_sources_*`` counters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.bc import turbo_bc
from repro.core.incremental import (
    DEFAULT_CHURN_THRESHOLD,
    DynamicBC,
    edit_affected_mask,
)
from repro.formats.edits import apply_edge_edits, cooc_apply_edits, csc_apply_edits
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.graphs.metrics import scale_free_metric


def _rng(*key):
    return np.random.default_rng(list(key))


def _random_graph(seed: int, n: int = 24, p: float = 0.12, directed: bool = False):
    return erdos_renyi_graph(n, p, seed=seed, directed=directed)


def grid_2d(rows: int, cols: int) -> Graph:
    e = []
    for i in range(rows):
        for j in range(cols):
            v = cols * i + j
            if j < cols - 1:
                e.append((v, v + 1))
            if i < rows - 1:
                e.append((v, v + cols))
    return Graph.from_edges(e, rows * cols, directed=False)


def _k33() -> Graph:
    # Complete bipartite K_{3,3}: sides {0,1,2} and {3,4,5}.
    return Graph.from_edges(
        [(i, 3 + j) for i in range(3) for j in range(3)], 6, directed=False
    )


def assert_bit_identical(handle: DynamicBC, **kwargs) -> None:
    scratch = turbo_bc(handle.graph, **kwargs)
    np.testing.assert_array_equal(handle.bc, scratch.bc)


class TestKeepState:
    def test_keep_state_returns_handle_with_identical_bc(self):
        g = _random_graph(1)
        handle = turbo_bc(g, keep_state=True)
        assert isinstance(handle, DynamicBC)
        np.testing.assert_array_equal(handle.bc, turbo_bc(g).bc)
        assert handle.churn_threshold == DEFAULT_CHURN_THRESHOLD

    def test_keep_state_rejects_internal_capture(self):
        with pytest.raises(ValueError):
            turbo_bc(_random_graph(1), keep_state=True, _capture=object())

    def test_empty_update_is_pure_refold(self):
        g = _random_graph(2)
        handle = turbo_bc(g, keep_state=True)
        before = handle.bc.copy()
        res = handle.update()
        np.testing.assert_array_equal(res.bc, before)
        assert res.stats.update_mode == "incremental"
        assert res.stats.affected_sources == 0
        assert res.stats.skipped_sources == g.n

    def test_explicit_sources_subset(self):
        g = _random_graph(3, directed=True)
        srcs = [0, 5, 9, 17]
        handle = turbo_bc(g, sources=srcs, keep_state=True)
        handle.update(edges_added=[(0, 7)], edges_removed=[(2, 3)])
        assert_bit_identical(handle, sources=srcs)


class TestAffectedPredicate:
    """Soundness: a source the mask clears must have an unchanged
    single-source BC vector on the edited graph, bit for bit."""

    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sound_against_brute_force(self, directed, seed):
        g = _random_graph(seed, n=20, p=0.15, directed=directed)
        rng = _rng(7, seed, int(directed))
        handle = turbo_bc(g, keep_state=True)
        # One random insert and one random delete, no growth.
        u, v = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
        if u == v:
            v = (v + 1) % g.n
        pairs = list(zip(g.src.tolist(), g.dst.tolist()))
        ru, rv = pairs[int(rng.integers(0, len(pairs)))]
        levels = np.stack([handle._states[s].levels for s in handle._order])
        sigma = np.stack([handle._states[s].sigma for s in handle._order])
        mask = edit_affected_mask(levels, sigma, "add", u, v, directed=directed)
        mask |= edit_affected_mask(levels, sigma, "remove", ru, rv,
                                   directed=directed)
        edited = g.apply_edits(added=[(u, v)], removed=[(ru, rv)])
        for i, s in enumerate(handle._order):
            if mask[i]:
                continue
            old = turbo_bc(g, sources=[s]).bc
            new = turbo_bc(edited, sources=[s]).bc
            np.testing.assert_array_equal(
                old, new,
                err_msg=f"predicate cleared source {s} but its BC moved",
            )

    def test_same_depth_insert_affects_zero_sources(self):
        # From any opposite-side source both endpoints of a same-side edge
        # sit at depth 1, so the insert cannot enter any shortest path.
        g = _k33()
        srcs = [3, 4, 5]
        handle = turbo_bc(g, sources=srcs, keep_state=True)
        res = handle.update(edges_added=[(0, 1)])
        assert res.stats.update_mode == "incremental"
        assert res.stats.affected_sources == 0
        assert res.stats.skipped_sources == len(srcs)
        assert_bit_identical(handle, sources=srcs)

    def test_non_dag_delete_affects_zero_sources(self):
        # The same-side edge is in no opposite-side source's BFS DAG
        # (|du - dv| == 0), so deleting it back out affects nobody.
        g = _k33().apply_edits(added=[(0, 1)])
        srcs = [3, 4, 5]
        handle = turbo_bc(g, sources=srcs, keep_state=True)
        res = handle.update(edges_removed=[(0, 1)])
        assert res.stats.update_mode == "incremental"
        assert res.stats.affected_sources == 0
        assert_bit_identical(handle, sources=srcs)

    def test_self_loop_edit_affects_zero_sources(self):
        g = _random_graph(4)
        handle = turbo_bc(g, keep_state=True)
        res = handle.update(edges_added=[(3, 3)])
        assert res.stats.affected_sources == 0
        np.testing.assert_array_equal(res.bc, turbo_bc(g).bc)


class TestUpdateIdentity:
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("batch", [1, 4])
    def test_chain_matches_from_scratch(self, directed, batch):
        g = _random_graph(10, n=26, p=0.12, directed=directed)
        rng = _rng(11, int(directed), batch)
        handle = turbo_bc(g, algorithm="adaptive", batch_size=batch,
                          keep_state=True)
        for _ in range(3):
            pairs = list(zip(handle.graph.src.tolist(),
                             handle.graph.dst.tolist()))
            rem = [pairs[int(rng.integers(0, len(pairs)))]] if pairs else []
            u = int(rng.integers(0, handle.graph.n))
            v = int(rng.integers(0, handle.graph.n))
            add = [(u, v)] if u != v else []
            handle.update(edges_added=add, edges_removed=rem)
            assert_bit_identical(handle, algorithm="adaptive", batch_size=batch)

    def test_remove_then_add_same_edges_is_noop(self):
        g = _random_graph(12)
        edges = list(zip(g.src.tolist(), g.dst.tolist()))[:5]
        handle = turbo_bc(g, keep_state=True)
        before = handle.bc.copy()
        res = handle.update(edges_added=edges, edges_removed=edges)
        np.testing.assert_array_equal(res.bc, before)
        assert handle.graph.m == g.m

    def test_churn_fallback_is_full_recompute(self):
        g = grid_2d(5, 5)
        handle = turbo_bc(g, keep_state=True)
        # A hub wired to everything affects (nearly) every source.
        res = handle.update(edges_added=[(0, v) for v in range(2, g.n)])
        assert res.stats.update_mode == "full"
        assert res.stats.affected_sources == g.n
        assert res.stats.skipped_sources == 0
        assert_bit_identical(handle)

    def test_churn_threshold_is_tunable(self):
        g = grid_2d(4, 4)
        handle = turbo_bc(g, keep_state=True)
        handle.churn_threshold = 0.0  # any affected source now trips it
        res = handle.update(edges_added=[(0, 15)])
        assert res.stats.update_mode == "full"
        assert_bit_identical(handle)

    def test_growth_all_sources_mode(self):
        g = _random_graph(13, n=18)
        handle = turbo_bc(g, keep_state=True)
        res = handle.update(edges_added=[(17, 18), (18, 19)])
        assert handle.graph.n == 20
        assert res.bc.size == 20
        assert res.stats.sources == 20  # new vertices joined the source set
        assert_bit_identical(handle)

    def test_growth_explicit_sources_mode(self):
        g = _random_graph(14, n=18)
        srcs = [0, 1, 2]
        handle = turbo_bc(g, sources=srcs, keep_state=True)
        res = handle.update(edges_added=[(17, 19)])
        assert handle.graph.n == 20
        assert res.stats.sources == len(srcs)  # the source set does not grow
        assert_bit_identical(handle, sources=srcs)


class TestOverflowRegime:
    """Sigma overflow forces dtype promotion; the retained fold order is
    then dtype-mixed, so updates must full-recompute -- bit-identically."""

    @pytest.mark.parametrize("batch", [1, 4])
    def test_volatile_handle_full_recomputes(self, batch):
        from repro.conformance.fuzzer import diamond_chain

        g = diamond_chain(34)  # sigma 2^34 overflows int32/f32 exact range
        handle = turbo_bc(g, sources=[0, 1], batch_size=batch, keep_state=True)
        assert handle._volatile_dtype
        res = handle.update(edges_removed=[(0, 1)])
        assert res.stats.update_mode == "full"
        assert_bit_identical(handle, sources=[0, 1], batch_size=batch)

    def test_update_triggered_promotion_goes_volatile(self):
        from repro.conformance.fuzzer import diamond_chain

        # Sever the chain at the middle diamond (both parallel branches,
        # or sigma merely halves): source 0 then counts at most 2^17 paths
        # and the handle starts non-volatile.  Re-adding the two branch
        # edges reconnects the 2^34-path graph and the sub-run promotes to
        # float64 -- the handle must notice and go volatile.
        g = diamond_chain(34)
        entry = 3 * 17
        cuts = [(entry, entry + 1), (entry, entry + 2)]
        broken = g.apply_edits(removed=cuts)
        handle = turbo_bc(broken, sources=[0], keep_state=True)
        assert not handle._volatile_dtype
        handle.update(edges_added=cuts)
        assert handle._volatile_dtype
        assert_bit_identical(handle, sources=[0])


class TestCacheInvalidation:
    """Edits must never let identity-keyed caches serve stale answers."""

    def test_apply_edits_bumps_cache_version(self):
        g = _random_graph(20)
        g2 = g.apply_edits(added=[(0, 9)])
        assert g2 is not g
        assert g2.cache_version == g.cache_version + 1
        g3 = g2.apply_edits(removed=[(0, 9)])
        assert g3.cache_version == g2.cache_version + 1

    def test_edited_graph_gets_fresh_format_objects_and_tile_plans(self):
        g = _random_graph(21)
        csc = g.to_csc()
        plan = csc.tile_plan(16)
        g2 = g.apply_edits(added=[(0, 11)])
        csc2 = g2.to_csc()
        assert csc2 is not csc
        assert csc2.version == csc.version + 1
        assert csc2.tile_plan(16) is not plan
        # The old object's memo is untouched (it still describes the old graph).
        assert csc.tile_plan(16) is plan

    def test_scf_memo_cannot_leak_across_edits(self):
        g = grid_2d(4, 4)
        scf = scale_free_metric(g)
        assert getattr(g, "_scf_cache", None) == scf
        g2 = g.apply_edits(added=[(0, v) for v in range(2, 16)])
        assert not hasattr(g2, "_scf_cache")
        assert scale_free_metric(g2) != scf

    def test_format_level_edits_match_graph_rebuild(self):
        g = _random_graph(22, directed=True)
        added = np.array([[0, 13], [5, 2]])
        removed = np.array([[g.src[0], g.dst[0]]])
        g2 = g.apply_edits(added=added, removed=removed)
        csc2 = csc_apply_edits(g.to_csc(), added, removed)
        cooc2 = cooc_apply_edits(g.to_cooc(), added, removed)
        ref_csc, ref_cooc = g2.to_csc(), g2.to_cooc()
        np.testing.assert_array_equal(csc2.col_ptr, ref_csc.col_ptr)
        np.testing.assert_array_equal(csc2.row, ref_csc.row)
        np.testing.assert_array_equal(cooc2.row, ref_cooc.row)
        np.testing.assert_array_equal(cooc2.col, ref_cooc.col)

    def test_apply_edge_edits_resorts_canonically(self):
        src = np.array([4, 0, 2], dtype=np.int64)
        dst = np.array([1, 3, 2], dtype=np.int64)
        out_src, out_dst, n = apply_edge_edits(
            src, dst, 5, added=np.array([[0, 1], [0, 1]]),
            removed=np.array([[2, 2], [9, 9]]),
        )
        # Sorted by (dst, src), deduped, self-loop dropped, out-of-range
        # removal ignored.
        assert n == 5
        assert list(zip(out_src.tolist(), out_dst.tolist())) == [
            (0, 1), (4, 1), (0, 3)]


class TestObservability:
    def test_update_metrics_and_spans(self, tmp_path):
        g = grid_2d(5, 4)
        tel = obs.RunTelemetry(trace=True)
        obs.activate(tel)
        try:
            handle = turbo_bc(g, keep_state=True)
            res = handle.update(edges_added=[(0, 7)])
        finally:
            tel.tracer.finish()
            obs.deactivate()
        counters = tel.metrics.to_dict()["counters"]
        assert counters["incremental_updates"] == 1
        assert (counters["incremental_sources_rerun"]
                == res.stats.affected_sources)
        assert (counters["incremental_sources_skipped"]
                == res.stats.skipped_sources)
        out = tmp_path / "trace.json"
        obs.write_chrome_trace(out, tel)
        import json

        doc = json.load(open(out))
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        names = {e.get("name") for e in events}
        assert "bc_update" in names
        assert "affected_scan" in names

    def test_stats_dict_carries_update_fields(self):
        g = grid_2d(4, 4)
        handle = turbo_bc(g, keep_state=True)
        res = handle.update(edges_added=[(0, 10)])
        d = res.stats.to_dict()
        assert d["update_mode"] in ("incremental", "full")
        assert d["affected_sources"] + d["skipped_sources"] == d["sources"]
        # A plain from-scratch run does not grow the new keys.
        assert "update_mode" not in turbo_bc(g).stats.to_dict()


@pytest.mark.dynamic
@pytest.mark.slow
class TestScaling:
    def test_single_edit_on_10k_graph_is_incremental_and_fast(self):
        # Two G(n, p) components: a ~9k bulk and a ~1k island.  An edit
        # inside the island can only affect island sources, so the bulk's
        # 60-source share of the work is skipped entirely.
        bulk = erdos_renyi_graph(9000, 0.0004, seed=100)
        island = erdos_renyi_graph(1000, 0.004, seed=101)
        src = np.concatenate([bulk.src, island.src + bulk.n])
        dst = np.concatenate([bulk.dst, island.dst + bulk.n])
        g = Graph(src, dst, bulk.n + island.n, directed=False)
        sources = list(range(60)) + [bulk.n + i for i in range(4)]

        handle = turbo_bc(g, sources=sources, algorithm="adaptive",
                          batch_size=4, keep_state=True)
        u = bulk.n + 10
        v = bulk.n + 500
        res = handle.update(edges_added=[(u, v)])

        assert res.stats.update_mode == "incremental"
        assert res.stats.affected_sources < 0.3 * len(sources)
        scratch = turbo_bc(g.apply_edits(added=[(u, v)]), sources=sources,
                           algorithm="adaptive", batch_size=4)
        np.testing.assert_array_equal(res.bc, scratch.bc)
        assert scratch.stats.gpu_time_s >= 2.0 * res.stats.gpu_time_s
