"""Performance-attribution tests: counters, roofline, dispatch audit, report.

The invariant under test everywhere: the attribution layer only *reads*
the launch records the timing model produced -- counter values must equal
the model's own closed-form terms, every launch must classify into exactly
one bound class, and the audit machinery must never perturb the run it
observes (parity is covered in test_obs.py).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs, turbo_bc
from repro.core.dispatch import DispatchDecision
from repro.gpusim.device import TITAN_XP, Device
from repro.gpusim.kernel import KernelStats
from repro.gpusim.warp import WARP_SIZE
from repro.obs.audit import audit_dispatch, launch_drift
from repro.obs.counters import counters_for_launch
from repro.obs.roofline import (
    classify_launch,
    peak_gflops,
    roofline_for_launch,
    roofline_report,
)
from repro.spmv.sccsc import _sccsc_stats, sccsc_spmv
from tests.conftest import random_graph


@pytest.fixture(autouse=True)
def no_leaked_session():
    yield
    leaked = obs.get_telemetry()
    obs.deactivate()
    assert leaked is None


class TestCounters:
    def test_counters_match_closed_form_stats(self):
        """Counter values ARE the timing model's terms on a known kernel."""
        g = random_graph(60, 0.15, directed=False, seed=5)
        csc = g.to_csc()
        dev = Device()
        x = np.zeros(g.n, dtype=np.int32)
        x[0] = 1
        allowed = np.ones(g.n, dtype=bool)
        y, launch = sccsc_spmv(dev, csc, x, allowed=allowed)
        expected = _sccsc_stats(
            csc, allowed, np.int32, int(np.count_nonzero(y)),
            "sccsc_spmv", dev.spec.l2_bytes,
        )
        c = counters_for_launch(launch, dev.spec)
        assert c.dram_read_bytes == expected.dram_read_bytes
        assert c.dram_write_bytes == expected.dram_write_bytes
        assert c.requested_load_bytes == expected.requested_load_bytes
        assert c.flops == expected.flops
        assert c.warp_cycles == expected.warp_cycles
        assert c.threads == expected.threads == g.n
        assert c.warps == -(-g.n // WARP_SIZE)

    def test_occupancy_and_rates(self):
        dev = Device()
        stats = KernelStats(
            name="k", threads=1000, warp_cycles=320, dram_read_bytes=3200,
            dram_write_bytes=1600, requested_load_bytes=6400, flops=100,
        )
        launch = dev.launch(stats)
        c = counters_for_launch(launch, dev.spec)
        assert c.occupancy == pytest.approx(1000 / dev.spec.max_resident_threads)
        assert c.dram_gbs == pytest.approx(4800 / launch.exec_time_s / 1e9)
        assert c.glt_gbs == pytest.approx(6400 / launch.exec_time_s / 1e9)
        assert c.gflops == pytest.approx(100 / launch.exec_time_s / 1e9)
        assert c.dram_bytes == 4800

    def test_occupancy_saturates_at_one(self):
        dev = Device()
        launch = dev.launch(KernelStats(name="big", threads=10**7, warp_cycles=1))
        assert counters_for_launch(launch, dev.spec).occupancy == 1.0

    def test_no_spec_means_zero_occupancy(self):
        dev = Device()
        launch = dev.launch(KernelStats(name="k", threads=64, warp_cycles=4))
        assert counters_for_launch(launch).occupancy == 0.0

    def test_divergence_is_critical_over_mean(self):
        dev = Device()
        # 2 warps, 100 total cycles -> mean 50; critical warp 80 -> 1.6
        launch = dev.launch(KernelStats(
            name="k", threads=64, warp_cycles=100, critical_warp_cycles=80,
        ))
        c = counters_for_launch(launch, dev.spec)
        assert c.warp_divergence == pytest.approx(1.6)
        assert c.atomic_conflicts == 0


class TestRoofline:
    def _launch(self, dev, **kw):
        return dev.launch(KernelStats(name=kw.pop("name", "k"), **kw))

    def test_classifies_bandwidth_bound(self):
        dev = Device()
        launch = self._launch(dev, dram_read_bytes=100 << 20, warp_cycles=10,
                              threads=1 << 20)
        assert classify_launch(launch) == "bandwidth"
        assert launch.is_memory_bound

    def test_classifies_compute_bound(self):
        dev = Device()
        launch = self._launch(dev, warp_cycles=10**9, dram_read_bytes=32,
                              threads=1 << 20)
        assert classify_launch(launch) == "compute"

    def test_classifies_latency_bound(self):
        dev = Device()
        launch = self._launch(dev, serial_updates=10**6, warp_cycles=10,
                              dram_read_bytes=32, threads=64)
        assert launch.serial_time_s > launch.memory_time_s
        assert classify_launch(launch) == "latency"

    def test_classifies_overhead_bound(self):
        dev = Device()
        assert classify_launch(dev.sync_readback()) == "overhead"
        tiny = self._launch(dev, warp_cycles=1, threads=32)
        assert classify_launch(tiny) == "overhead"

    def test_attained_never_exceeds_ceiling(self):
        dev = Device()
        rng = np.random.default_rng(0)
        for _ in range(50):
            wc = int(rng.integers(1, 10**7))
            launch = self._launch(
                dev,
                warp_cycles=wc,
                dram_read_bytes=32 * int(rng.integers(1, 10**5)),
                # a warp issue moves at most 32 lane-flops, so this is the
                # physical flop ceiling the model's 'by construction' relies on
                flops=int(rng.integers(0, wc * WARP_SIZE + 1)),
                threads=int(rng.integers(32, 10**6)),
            )
            lr = roofline_for_launch(launch, dev.spec)
            assert lr.attained_gflops <= lr.ceiling_gflops * (1 + 1e-9)
            assert 0.0 <= lr.attained_frac <= 1.0 + 1e-9
            assert lr.bw_frac <= 1.0 + 1e-9

    def test_report_attributes_all_time(self):
        """The acceptance criterion: >= 95% of GPU time classified."""
        g = random_graph(80, 0.1, directed=False, seed=2)
        dev = Device()
        turbo_bc(g, sources=[0, 1, 2], algorithm="adaptive", device=dev)
        rep = roofline_report(dev.profiler.launches, dev.spec)
        assert rep.total_time_s == pytest.approx(dev.profiler.total_time_s())
        assert rep.classified_frac >= 0.95
        assert sum(rep.bound_time_s.values()) == pytest.approx(rep.total_time_s)
        assert sum(k.launches for k in rep.kernels.values()) == len(
            dev.profiler.launches
        )
        # JSON-able end to end
        import json

        json.dumps(rep.to_dict())

    def test_peak_gflops_formula(self):
        assert peak_gflops(TITAN_XP) == pytest.approx(30 * 128 * 1.58)


class TestDispatchAudit:
    def _decision(self, kernel, est, measured, stage="forward", depth=1):
        return DispatchDecision(
            stage=stage, depth=depth, kernel=kernel, nnz_frontier=10,
            frontier_frac=0.1, avg_deg_active=2.0, max_deg_allowed=4,
            est_us=est, measured_us=measured,
        )

    def test_regret_detected_from_measured_times(self):
        d = self._decision(
            "sccsc",
            {"sccsc": 5.0, "veccsc": 9.0, "sccooc": 10.0},
            {"sccsc": 8.0, "veccsc": 3.0, "sccooc": 12.0},
        )
        audit = audit_dispatch([d])
        assert audit.measured_complete
        assert len(audit.regrets) == 1
        r = audit.regrets[0]
        assert r.chosen == "sccsc" and r.fastest == "veccsc"
        assert r.regret_us == pytest.approx(5.0)
        assert audit.regret_frac == 1.0

    def test_no_regret_when_chosen_is_fastest(self):
        d = self._decision(
            "veccsc",
            {"sccsc": 5.0, "veccsc": 2.0, "sccooc": 10.0},
            {"sccsc": 6.0, "veccsc": 2.5, "sccooc": 11.0},
        )
        audit = audit_dispatch([d])
        assert audit.regrets == []
        assert audit.calibration["veccsc"].drift == pytest.approx(2.5 / 2.0)

    def test_estimate_only_decisions_have_no_false_regret(self):
        """Without replays the chosen kernel is the est argmin -- no regret."""
        d = self._decision(
            "sccsc",
            {"sccsc": 5.0, "veccsc": 9.0, "sccooc": 10.0},
            {"sccsc": 8.0},  # only the chosen kernel measured
        )
        audit = audit_dispatch([d])
        assert not audit.measured_complete
        assert audit.regrets == []
        assert audit.calibration["sccsc"].measured_total_us == 8.0

    def test_level_mix_matches_dispatcher(self):
        g = random_graph(60, 0.12, directed=False, seed=8)
        dev = Device()
        with obs.session() as tel:
            turbo_bc(g, sources=[0, 1], algorithm="adaptive", device=dev)
        audit = audit_dispatch(tel.dispatch_decisions)
        # the audit's mix re-derives exactly the dispatcher's kernel_mix
        total = {}
        for mix in audit.level_mix.values():
            for k, v in mix.items():
                total[k] = total.get(k, 0) + v
        assert sum(total.values()) == len(tel.dispatch_decisions)
        assert set(audit.level_mix) <= {"forward", "backward"}

    def test_empty_audit(self):
        audit = audit_dispatch([])
        assert audit.regret_frac == 0.0
        assert audit.to_dict()["decisions"] == 0


class TestLaunchDrift:
    def test_serial_floor_shows_as_drift(self):
        dev = Device()
        fast = dev.launch(KernelStats(name="plain", threads=1 << 20,
                                      dram_read_bytes=1 << 20, warp_cycles=100))
        slow = dev.launch(KernelStats(name="atomic", threads=1 << 20,
                                      dram_read_bytes=1 << 20, warp_cycles=100,
                                      serial_updates=10**6))
        rows = launch_drift([fast, slow])
        assert rows[0].name == "atomic" and rows[0].drift > 1.0
        assert rows[1].name == "plain" and rows[1].drift == pytest.approx(1.0)

    def test_overhead_only_launches_skipped(self):
        dev = Device()
        dev.sync_readback()
        assert launch_drift(dev.profiler.launches) == []


class TestPerfReport:
    def test_report_renders_all_sections(self):
        g = random_graph(70, 0.12, directed=False, seed=4)
        dev = Device()
        with obs.session(audit_dispatch=True) as tel:
            turbo_bc(g, sources=[0, 1], algorithm="adaptive", device=dev)
        text = obs.perf_report_for_run(dev, tel, title="t")
        assert "## Roofline attribution" in text
        assert "## Adaptive dispatch audit" in text
        assert "## Calibration drift" in text
        assert "measured (all strategies replayed)" in text
        assert "level mix (forward)" in text

    def test_report_without_adaptive_run(self):
        g = random_graph(40, 0.1, directed=False, seed=6)
        dev = Device()
        with obs.session() as tel:
            turbo_bc(g, sources=0, algorithm="veccsc", device=dev)
        text = obs.perf_report_for_run(dev, tel)
        assert "no dispatch decisions recorded" in text

    def test_cli_perf_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        js = tmp_path / "report.json"
        rc = main([
            "perf-report", "mycielskian15", "--sources", "2",
            "--out", str(out), "--json", str(js),
        ])
        assert rc == 0
        text = out.read_text()
        assert "## Roofline attribution" in text
        assert "attributed to a bound class" in text
        import json

        doc = json.loads(js.read_text())
        assert doc["schema"] == "repro.obs/perf-report/v1"
        assert doc["roofline"]["classified_frac"] >= 0.95
        assert doc["dispatch_audit"]["measured_complete"] is True
        assert "perf-report" in capsys.readouterr().out
