"""Edge-list canonicalisation and format-conversion tests."""

import numpy as np
import pytest

from repro.formats import convert


class TestCanonicalEdges:
    def test_sorts_column_major(self):
        src, dst = convert.canonical_edges([2, 0, 1], [1, 2, 0], 3)
        assert dst.tolist() == sorted(dst.tolist())

    def test_secondary_sort_by_src(self):
        src, dst = convert.canonical_edges([3, 1, 2], [0, 0, 0], 4)
        assert src.tolist() == [1, 2, 3]

    def test_dedup(self):
        src, dst = convert.canonical_edges([0, 0, 0], [1, 1, 1], 2)
        assert src.size == 1

    def test_drops_self_loops(self):
        src, dst = convert.canonical_edges([0, 1], [0, 0], 2)
        assert src.tolist() == [1]
        assert dst.tolist() == [0]

    def test_keeps_self_loops_when_asked(self):
        src, dst = convert.canonical_edges([0], [0], 1, drop_self_loops=False)
        assert src.size == 1

    def test_empty(self):
        src, dst = convert.canonical_edges([], [], 5)
        assert src.size == 0 and dst.size == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            convert.canonical_edges([0], [9], 3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            convert.canonical_edges([0, 1], [0], 3)


class TestBuilders:
    SRC = [0, 0, 1, 3, 2, 2]
    DST = [1, 2, 3, 0, 1, 1]  # one duplicate (2,1)
    N = 4

    def dense(self):
        d = np.zeros((self.N, self.N), dtype=np.int8)
        d[self.SRC, self.DST] = 1
        return d

    def test_edges_to_cooc(self):
        mat = convert.edges_to_cooc(self.SRC, self.DST, self.N)
        assert np.array_equal(mat.to_dense(), self.dense())
        assert mat.nnz == 5

    def test_edges_to_csc(self):
        mat = convert.edges_to_csc(self.SRC, self.DST, self.N)
        assert np.array_equal(mat.to_dense(), self.dense())

    def test_edges_to_csr(self):
        mat = convert.edges_to_csr(self.SRC, self.DST, self.N)
        assert np.array_equal(mat.to_dense(), self.dense())

    def test_cooc_row_equals_csc_row(self):
        """The paper's COOC/CSC invariant: shared row array."""
        cooc = convert.edges_to_cooc(self.SRC, self.DST, self.N)
        csc = convert.edges_to_csc(self.SRC, self.DST, self.N)
        assert np.array_equal(cooc.row, csc.row)

    def test_cooc_to_csc_roundtrip(self):
        cooc = convert.edges_to_cooc(self.SRC, self.DST, self.N)
        csc = convert.cooc_to_csc(cooc)
        back = convert.csc_to_cooc(csc)
        assert np.array_equal(back.row, cooc.row)
        assert np.array_equal(back.col, cooc.col)

    def test_csc_csr_roundtrip(self):
        csc = convert.edges_to_csc(self.SRC, self.DST, self.N)
        csr = convert.csc_to_csr(csc)
        back = convert.csr_to_csc(csr)
        assert np.array_equal(back.to_dense(), csc.to_dense())

    def test_validators_accept_builder_output(self):
        """Builders use _skip_checks; their output must still be valid."""
        from repro.formats import COOCMatrix, CSCMatrix

        cooc = convert.edges_to_cooc(self.SRC, self.DST, self.N)
        COOCMatrix(cooc.row, cooc.col, cooc.shape)  # re-validate
        csc = convert.edges_to_csc(self.SRC, self.DST, self.N)
        CSCMatrix(csc.col_ptr, csc.row, csc.shape)
