"""CLI tests (in-process via repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import io, suite
from tests.conftest import random_graph


@pytest.fixture(autouse=True)
def clear_cache():
    yield
    suite.clear_graph_cache()


class TestInfo:
    def test_known_graph(self, capsys):
        assert main(["info", "mycielskian15"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "paper:" in out and "repro:" in out

    def test_unknown_graph_exits_2(self, capsys):
        assert main(["info", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope" in err
        assert "repro suite" in err  # points at the discovery command


class TestBC:
    def test_on_mtx_file(self, tmp_path, capsys):
        g = random_graph(40, 0.1, directed=False, seed=2)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--source", "0", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "TurboBC" in out and "MTEPs" in out and "sync_readback" in out

    def test_on_edge_list_with_output(self, tmp_path, capsys):
        g = random_graph(30, 0.12, directed=True, seed=3)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        out_file = tmp_path / "bc.txt"
        assert main(["bc", str(path), "--output", str(out_file), "--top", "3"]) == 0
        vec = np.loadtxt(out_file)
        assert vec.shape == (g.n,)

    def test_algorithm_pinned(self, tmp_path, capsys):
        g = random_graph(30, 0.12, directed=False, seed=4)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--algorithm", "veccsc", "--source", "0"]) == 0
        assert "veCSC" in capsys.readouterr().out

    def test_rejects_bad_algorithm(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bc", "whatever.mtx", "--algorithm", "csr5"])


class TestErrorPaths:
    """Bad inputs exit non-zero with a one-line message on stderr -- never a
    traceback.  argparse-level validation exits 2 via SystemExit; CLIError
    paths return 2; conformance divergences return 1."""

    def test_nonexistent_graph_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "no-such-graph.mtx"
        assert main(["bc", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "graph file not found" in err and str(missing) in err

    def test_unknown_suite_name_exits_2(self, capsys):
        assert main(["bc", "not-a-suite-graph"]) == 2
        err = capsys.readouterr().err
        assert "unknown graph" in err
        assert ".mtx" in err  # explains what would have been accepted

    @pytest.mark.parametrize("bad", ["0", "-3", "huge"])
    def test_bad_batch_size_exits_2(self, tmp_path, bad):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        with pytest.raises(SystemExit) as exc:
            main(["bc", str(path), "--batch-size", bad])
        assert exc.value.code == 2

    def test_batch_size_auto_accepted(self, tmp_path):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--batch-size", "auto"]) == 0

    def test_conflicting_export_targets_exit_2(self, tmp_path, capsys):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        shared = tmp_path / "out.json"
        assert main(["bc", str(path), "--trace-out", str(shared),
                     "--metrics-json", str(shared)]) == 2
        err = capsys.readouterr().err
        assert "--trace-out" in err and "--metrics-json" in err
        assert "must be distinct files" in err

    def test_conflict_detected_through_path_aliases(self, tmp_path, capsys):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        a = tmp_path / "out.json"
        b = tmp_path / "sub" / ".." / "out.json"  # same file, different spelling
        assert main(["bc", str(path), "--output", str(a),
                     "--stats-json", str(b)]) == 2
        assert "must be distinct files" in capsys.readouterr().err

    def test_distinct_targets_accepted(self, tmp_path):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--source", "0",
                     "--trace-out", str(tmp_path / "trace.json"),
                     "--metrics-json", str(tmp_path / "metrics.json")]) == 0


class TestSuiteCommand:
    def test_lists_all_graphs(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "33 graphs" in out
        assert "mycielskian19" in out and "sk-2005" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_table_validates_k(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])
