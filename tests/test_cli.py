"""CLI tests (in-process via repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import io, suite
from tests.conftest import random_graph


@pytest.fixture(autouse=True)
def clear_cache():
    yield
    suite.clear_graph_cache()


class TestInfo:
    def test_known_graph(self, capsys):
        assert main(["info", "mycielskian15"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "paper:" in out and "repro:" in out

    def test_unknown_graph_exits_2(self, capsys):
        assert main(["info", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope" in err
        assert "repro suite" in err  # points at the discovery command


class TestBC:
    def test_on_mtx_file(self, tmp_path, capsys):
        g = random_graph(40, 0.1, directed=False, seed=2)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--source", "0", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "TurboBC" in out and "MTEPs" in out and "sync_readback" in out

    def test_on_edge_list_with_output(self, tmp_path, capsys):
        g = random_graph(30, 0.12, directed=True, seed=3)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        out_file = tmp_path / "bc.txt"
        assert main(["bc", str(path), "--output", str(out_file), "--top", "3"]) == 0
        vec = np.loadtxt(out_file)
        assert vec.shape == (g.n,)

    def test_algorithm_pinned(self, tmp_path, capsys):
        g = random_graph(30, 0.12, directed=False, seed=4)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--algorithm", "veccsc", "--source", "0"]) == 0
        assert "veCSC" in capsys.readouterr().out

    def test_rejects_bad_algorithm(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bc", "whatever.mtx", "--algorithm", "csr5"])


class TestErrorPaths:
    """Bad inputs exit non-zero with a one-line message on stderr -- never a
    traceback.  argparse-level validation exits 2 via SystemExit; CLIError
    paths return 2; conformance divergences return 1."""

    def test_nonexistent_graph_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "no-such-graph.mtx"
        assert main(["bc", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "graph file not found" in err and str(missing) in err

    def test_unknown_suite_name_exits_2(self, capsys):
        assert main(["bc", "not-a-suite-graph"]) == 2
        err = capsys.readouterr().err
        assert "unknown graph" in err
        assert ".mtx" in err  # explains what would have been accepted

    @pytest.mark.parametrize("bad", ["0", "-3", "huge"])
    def test_bad_batch_size_exits_2(self, tmp_path, bad):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        with pytest.raises(SystemExit) as exc:
            main(["bc", str(path), "--batch-size", bad])
        assert exc.value.code == 2

    def test_batch_size_auto_accepted(self, tmp_path):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--batch-size", "auto"]) == 0

    def test_conflicting_export_targets_exit_2(self, tmp_path, capsys):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        shared = tmp_path / "out.json"
        assert main(["bc", str(path), "--trace-out", str(shared),
                     "--metrics-json", str(shared)]) == 2
        err = capsys.readouterr().err
        assert "--trace-out" in err and "--metrics-json" in err
        assert "must be distinct files" in err

    def test_conflict_detected_through_path_aliases(self, tmp_path, capsys):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        a = tmp_path / "out.json"
        b = tmp_path / "sub" / ".." / "out.json"  # same file, different spelling
        assert main(["bc", str(path), "--output", str(a),
                     "--stats-json", str(b)]) == 2
        assert "must be distinct files" in capsys.readouterr().err

    def test_distinct_targets_accepted(self, tmp_path):
        g = random_graph(10, 0.2, directed=False, seed=1)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--source", "0",
                     "--trace-out", str(tmp_path / "trace.json"),
                     "--metrics-json", str(tmp_path / "metrics.json")]) == 0


class TestSuiteCommand:
    def test_lists_all_graphs(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "33 graphs" in out
        assert "mycielskian19" in out and "sk-2005" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_table_validates_k(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])


class TestObservabilityCLI:
    """`repro history` / `slo-check` / `trend` wiring and exit codes.

    Usage errors (missing ledger, malformed spec, empty window, bad
    --window) must exit 2 with an actionable message; gate failures
    (budget breach, flagged regression) exit 1; clean passes exit 0.
    """

    @pytest.fixture()
    def ledger(self, tmp_path):
        graph = tmp_path / "tiny.el"
        graph.write_text("0 1\n1 2\n2 3\n3 0\n0 2\n")
        path = tmp_path / "ledger.jsonl"
        for _ in range(3):
            assert main(["bc", str(graph), "--ledger", str(path)]) == 0
        return path

    def test_history_table_and_jsonl(self, ledger, capsys):
        assert main(["history", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and out.count("sccsc/b1") == 3
        assert main(["history", "--ledger", str(ledger),
                     "--format", "jsonl", "--last", "1"]) == 0
        import json as _json
        rec = _json.loads(capsys.readouterr().out)
        assert rec["kind"] == "bc"

    def test_history_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main(["history", "--ledger", str(tmp_path / "no.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--ledger" in err

    def test_slo_check_pass_and_breach(self, ledger, tmp_path, capsys):
        import json as _json
        spec = tmp_path / "budgets.json"
        spec.write_text(_json.dumps({"budgets": [
            {"name": "lat", "metric": "gpu_time_s", "max": 10.0}]}))
        assert main(["slo-check", "--ledger", str(ledger),
                     "--budgets", str(spec)]) == 0
        assert "PASS" in capsys.readouterr().out
        spec.write_text(_json.dumps({"budgets": [
            {"name": "lat", "metric": "gpu_time_s", "max": 1e-12}]}))
        assert main(["slo-check", "--ledger", str(ledger),
                     "--budgets", str(spec)]) == 1
        assert "breach" in capsys.readouterr().out

    def test_slo_check_missing_ledger_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "budgets.json"
        spec.write_text('{"budgets": [{"metric": "x", "max": 1.0}]}')
        assert main(["slo-check", "--ledger", str(tmp_path / "no.jsonl"),
                     "--budgets", str(spec)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "repro bc" in err

    def test_slo_check_malformed_spec_exits_2(self, ledger, tmp_path, capsys):
        spec = tmp_path / "budgets.json"
        spec.write_text('{"budgets": [{"max": 1.0}]}')
        assert main(["slo-check", "--ledger", str(ledger),
                     "--budgets", str(spec)]) == 2
        assert "missing 'metric'" in capsys.readouterr().err

    def test_slo_check_empty_window_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        spec = tmp_path / "budgets.json"
        spec.write_text('{"budgets": [{"metric": "x", "max": 1.0}]}')
        assert main(["slo-check", "--ledger", str(empty),
                     "--budgets", str(spec)]) == 2
        assert "no records" in capsys.readouterr().err

    def test_trend_clean_and_doctored(self, ledger, capsys, tmp_path):
        import json as _json
        assert main(["trend", "--ledger", str(ledger)]) == 0
        assert "PASS" in capsys.readouterr().out
        from repro import obs
        records = obs.read_ledger(ledger)
        doctored = _json.loads(_json.dumps(records[-1]))
        doctored["metrics"]["kernel_exec_s"] *= 2
        obs.Ledger(ledger).append(doctored)
        report = tmp_path / "trend.md"
        assert main(["trend", "--ledger", str(ledger),
                     "--report", str(report)]) == 1
        assert "kernel_exec_s" in report.read_text()

    def test_trend_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main(["trend", "--ledger", str(tmp_path / "no.jsonl")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_trend_bad_window_exits_2(self, ledger, capsys):
        assert main(["trend", "--ledger", str(ledger), "--window", "0"]) == 2
        assert "--window must be >= 1" in capsys.readouterr().err

    def test_canary_missing_budget_spec_exits_2(self, tmp_path, capsys):
        assert main(["canary", "--seed", "0",
                     "--budgets", str(tmp_path / "no.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--bless-budgets" in err

    def test_perf_diff_baseline_flag_validation(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text('{"criterion": {"achieved": 1.0}}')
        led = tmp_path / "l.jsonl"
        led.write_text("")
        # both a positional baseline and --baseline-ledger: ambiguous
        assert main(["perf-diff", str(bench), str(bench),
                     "--baseline-ledger", str(led)]) == 2
        assert "either" in capsys.readouterr().err
        # neither baseline source
        assert main(["perf-diff", str(bench)]) == 2
        assert capsys.readouterr().err.startswith("error:")
        # ledger with no matching bench records
        assert main(["perf-diff", "--baseline-ledger", str(led),
                     str(bench)]) == 2
        assert 'no kind="bench" records' in capsys.readouterr().err
