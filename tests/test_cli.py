"""CLI tests (in-process via repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import io, suite
from tests.conftest import random_graph


@pytest.fixture(autouse=True)
def clear_cache():
    yield
    suite.clear_graph_cache()


class TestInfo:
    def test_known_graph(self, capsys):
        assert main(["info", "mycielskian15"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "paper:" in out and "repro:" in out

    def test_unknown_graph(self):
        with pytest.raises(KeyError):
            main(["info", "nope"])


class TestBC:
    def test_on_mtx_file(self, tmp_path, capsys):
        g = random_graph(40, 0.1, directed=False, seed=2)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--source", "0", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "TurboBC" in out and "MTEPs" in out and "sync_readback" in out

    def test_on_edge_list_with_output(self, tmp_path, capsys):
        g = random_graph(30, 0.12, directed=True, seed=3)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        out_file = tmp_path / "bc.txt"
        assert main(["bc", str(path), "--output", str(out_file), "--top", "3"]) == 0
        vec = np.loadtxt(out_file)
        assert vec.shape == (g.n,)

    def test_algorithm_pinned(self, tmp_path, capsys):
        g = random_graph(30, 0.12, directed=False, seed=4)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert main(["bc", str(path), "--algorithm", "veccsc", "--source", "0"]) == 0
        assert "veCSC" in capsys.readouterr().out

    def test_rejects_bad_algorithm(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bc", "whatever.mtx", "--algorithm", "csr5"])


class TestSuiteCommand:
    def test_lists_all_graphs(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "33 graphs" in out
        assert "mycielskian19" in out and "sk-2005" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_table_validates_k(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])
