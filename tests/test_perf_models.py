"""Performance-accounting tests: MTEPs, footprint model, CPU models."""

import pytest

from repro.gpusim.device import TITAN_XP
from repro.perf.calibration import CPU_CALIBRATION
from repro.perf.cpu import CpuCostModel, MulticoreCostModel
from repro.perf.memory_model import (
    FootprintModel,
    gunrock_footprint_words,
    turbobc_footprint_words,
)
from repro.perf.mteps import bc_per_vertex_mteps, exact_bc_mteps, gteps


class TestMteps:
    def test_bc_per_vertex_paper_convention(self):
        # mark3jac060sc: m = 171k edges in 2.1 ms -> 82 MTEPs (Table 1)
        assert bc_per_vertex_mteps(171_000, 2.1e-3) == pytest.approx(81.4, abs=0.5)

    def test_exact_bc_paper_convention(self):
        # mycielskian16 row of Table 5: n*m = 1.639e12 in 159.8 s -> 10257 MTEPs
        assert exact_bc_mteps(49_151, 33_343_414, 159.8) == pytest.approx(10_255, rel=0.01)

    def test_gteps(self):
        assert gteps(18_470) == pytest.approx(18.47)

    def test_rejects_zero_runtime(self):
        with pytest.raises(ValueError):
            bc_per_vertex_mteps(10, 0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            exact_bc_mteps(-1, 10, 1.0)


class TestFootprintModel:
    def test_turbobc_csc_is_7n_plus_m(self):
        assert turbobc_footprint_words(10, 100, "csc") == 70 + 1 + 100

    def test_turbobc_cooc_is_6n_plus_2m(self):
        assert turbobc_footprint_words(10, 100, "cooc") == 60 + 200

    def test_gunrock_is_9n_plus_2m(self):
        assert gunrock_footprint_words(10, 100) == 90 + 2 + 200

    def test_reduction_is_2n_plus_m(self):
        """The paper's claimed saving."""
        model = FootprintModel(1000, 5000)
        assert model.reduction_words() == 2 * 1000 + 1 + 5000

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            turbobc_footprint_words(1, 1, "csr")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gunrock_footprint_words(-1, 0)

    @pytest.mark.parametrize(
        "name,n,m,fmt",
        [
            ("kmer_V1r", 214_000_000, 465_000_000, "csc"),
            ("it-2004", 42_000_000, 1_151_000_000, "cooc"),
            ("GAP-twitter", 62_000_000, 1_469_000_000, "csc"),
            ("sk-2005", 51_000_000, 1_950_000_000, "csc"),
        ],
    )
    def test_table4_verdicts(self, name, n, m, fmt):
        """Every Table 4 graph fits TurboBC but OOMs gunrock on the TITAN Xp."""
        model = FootprintModel(n, m)
        cap = TITAN_XP.global_memory_bytes
        assert model.fits(cap, system="turbobc", fmt=fmt), name
        assert not model.fits(cap, system="gunrock"), name

    def test_table3_graphs_fit_both(self):
        """mycielskian19 (the largest Table 3 graph) fits both systems."""
        model = FootprintModel(393_000, 903_195_000)
        cap = TITAN_XP.global_memory_bytes
        assert model.fits(cap, system="turbobc")
        assert model.fits(cap, system="gunrock")

    def test_fits_unknown_system(self):
        with pytest.raises(ValueError):
            FootprintModel(1, 1).fits(100, system="cusparse")


class TestCpuModels:
    def test_sequential_linear_in_ops(self):
        a = CpuCostModel()
        a.charge_stream(1000)
        b = CpuCostModel()
        b.charge_stream(2000)
        assert b.time_s == pytest.approx(2 * a.time_s)

    def test_random_costs_more_than_stream(self):
        a = CpuCostModel()
        a.charge_stream(1000)
        b = CpuCostModel()
        b.charge_random(1000)
        assert b.time_s > a.time_s

    def test_rejects_negative_charge(self):
        with pytest.raises(ValueError):
            CpuCostModel().charge_stream(-1)

    def test_multicore_sync_floor(self):
        m = MulticoreCostModel()
        m.charge_level(0, 0, 0)
        assert m.time_s == pytest.approx(m.machine.sync_overhead_s)

    def test_multicore_bandwidth_ceiling(self):
        m = MulticoreCostModel()
        huge_bytes = int(m.machine.bandwidth_gbs * 1e9)  # 1 s of traffic
        m.charge_level(0, 0, huge_bytes)
        assert m.time_s >= 1.0

    def test_multicore_parallel_speedup(self):
        m = MulticoreCostModel()
        m.charge_level(10_000_000, 0, 0)
        serial = 10_000_000 * CPU_CALIBRATION.sequential_random_access_s
        assert m.time_s < serial  # parallelism helps

    def test_multicore_rejects_negative(self):
        with pytest.raises(ValueError):
            MulticoreCostModel().charge_level(-1, 0, 0)
