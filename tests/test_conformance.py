"""Conformance subsystem: fuzzer determinism, the config registry, the
delta-debugging shrink, metamorphic oracles, the golden corpus, and the
headline demonstration -- an injected off-by-one in a scratch kernel copy
is caught with a shrunk counterexample of <= 10 vertices."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.conformance import (
    METAMORPHIC_ORACLES,
    ExecutionConfig,
    FuzzCase,
    GraphFuzzer,
    bless_golden,
    check_golden,
    default_configs,
    diamond_chain,
    filter_configs,
    golden_dir,
    load_golden_case,
    run_conformance,
    shrink_counterexample,
)
from repro.conformance.harness import counterexample_graph
from repro.conformance.oracles import check_sigma_doubling
from repro.graphs.graph import Graph
from repro.spmv import KERNEL_NAMES


def _graphs_equal(a: Graph, b: Graph) -> bool:
    return (a.n == b.n and a.directed == b.directed
            and np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst))


class TestFuzzer:
    def test_case_is_deterministic_in_seed_and_index(self):
        for i in (0, 3, 17, 31):
            a, b = GraphFuzzer(7).case(i), GraphFuzzer(7).case(i)
            assert a.recipe == b.recipe
            assert a.sources == b.sources
            assert _graphs_equal(a.graph, b.graph)

    def test_case_independent_of_budget(self):
        stream = list(GraphFuzzer(3).cases(20))
        for i in (0, 5, 19):
            assert _graphs_equal(stream[i].graph, GraphFuzzer(3).case(i).graph)

    def test_different_seeds_differ(self):
        a = [GraphFuzzer(0).case(i).graph for i in range(16)]
        b = [GraphFuzzer(1).case(i).graph for i in range(16)]
        assert any(not _graphs_equal(x, y) for x, y in zip(a, b))

    def test_adversarial_coverage(self):
        """A modest budget must hit every adversarial feature class."""
        cases = list(GraphFuzzer(0).cases(64))
        recipes = " ".join(c.recipe for c in cases)
        for tag in ("selfloops", "dupedges", "isolated", "dropedges"):
            assert tag in recipes, f"no case exercised {tag}"
        assert any(c.graph.directed for c in cases)
        assert any(not c.graph.directed for c in cases)
        # Disconnected instances (isolated vertices or dropped edges).
        assert any(c.graph.n > 0 and len(
            np.union1d(c.graph.src, c.graph.dst)) < c.graph.n for c in cases)

    def test_source_sampling_policy(self):
        for c in GraphFuzzer(0).cases(48):
            if c.graph.n <= 16:
                assert c.sources is None
                assert c.source_list == list(range(c.graph.n))
            else:
                assert c.sources is not None
                assert len(c.sources) <= 8
                assert all(0 <= s < c.graph.n for s in c.sources)

    def test_diamond_chain_sigma(self):
        g = diamond_chain(3)
        assert g.n == 10 and not g.directed
        from repro.core.bfs import turbo_bfs
        assert int(turbo_bfs(g, 0).sigma[g.n - 1]) == 8

    def test_diamond_chain_rejects_negative(self):
        with pytest.raises(ValueError):
            diamond_chain(-1)


class TestConfigRegistry:
    def test_covers_every_execution_axis(self):
        configs = default_configs()
        names = {c.name for c in configs}
        assert len(names) == len(configs) == 23
        # the scheduler axis: cost-model and round-robin placements both
        # present among the multi-GPU entries
        scheds = {c.axes.get("scheduler") for c in configs
                  if c.axes.get("gpus", 1) > 1}
        assert scheds == {"cost", "roundrobin"}
        for kernel in (*KERNEL_NAMES, "adaptive"):
            for batch in (1, 4, "auto"):
                assert f"{kernel}/b{batch}" in names
        for kernel in ("pullcsc", "tcspmm"):
            for batch in (1, 4):
                assert f"{kernel}/b{batch}" in names
        by_axes = [c.axes for c in configs]
        assert any(a.get("gpus", 1) > 1 for a in by_axes)
        assert any(a.get("telemetry") for a in by_axes)
        assert "sequential" in names

    def test_configs_agree_on_a_small_graph(self):
        g = Graph.from_edges([(i, i + 1) for i in range(5)], 6, directed=False)
        want = brandes_bc(g)
        for config in default_configs():
            got = config.run(g, None)
            assert got.dtype == np.float64
            np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-9,
                                       err_msg=config.name)

    def test_filter_substring_and_glob(self):
        configs = default_configs()
        assert [c.name for c in filter_configs(configs, ["veccsc"])] == [
            "veccsc/b1", "veccsc/b4", "veccsc/bauto", "veccsc/b4/gpus3"]
        assert [c.name for c in filter_configs(configs, ["*/b1"])] == [
            "sccooc/b1", "sccsc/b1", "veccsc/b1", "adaptive/b1",
            "pullcsc/b1", "tcspmm/b1"]
        assert [c.name for c in filter_configs(configs, ["adaptive*"])] == [
            "adaptive/b1", "adaptive/b4", "adaptive/bauto",
            "adaptive/b4/gpus4"]
        assert filter_configs(configs, None) == list(configs)
        assert filter_configs(configs, ["nosuchconfig"]) == []


class TestShrink:
    def test_minimizes_to_the_triggering_core(self):
        # Predicate: the graph contains a vertex of degree >= 3.  Planted in
        # a star-4 buried inside a 30-vertex path; the shrink must strip the
        # path and return (close to) the claw alone.
        e = [(i, i + 1) for i in range(29)] + [(30, 31), (30, 32), (30, 33)]
        g = Graph.from_edges(e, 34, directed=False)

        def has_claw(graph: Graph) -> bool:
            if graph.n == 0:
                return False
            deg = np.bincount(graph.src, minlength=graph.n)
            return bool(deg.max(initial=0) >= 3)

        shrunk = shrink_counterexample(g, has_claw)
        assert has_claw(shrunk)
        assert shrunk.n <= 4

    def test_returns_input_when_predicate_fails(self):
        g = Graph.from_edges([(0, 1)], 2, directed=False)
        assert shrink_counterexample(g, lambda _: False) is g

    def test_respects_budget(self):
        calls = 0

        def predicate(graph: Graph) -> bool:
            nonlocal calls
            calls += 1
            return True

        g = Graph.from_edges([(i, i + 1) for i in range(19)], 20,
                             directed=False)
        shrink_counterexample(g, predicate, max_checks=10)
        assert calls <= 10 + 4  # budget + one bounded pass per chunk size


# -- the headline acceptance test: a scratch kernel copy with an injected
#    off-by-one must be caught and shrunk to <= 10 vertices ------------------


def _scratch_bc(graph: Graph, sources=None, *, skip_deepest_level=False):
    """A scratch level-synchronous copy of the BC kernel (pure python).

    With ``skip_deepest_level=True`` the backward sweep starts one level
    short -- the classic off-by-one a hand-copied kernel picks up -- so the
    deepest frontier never propagates its dependency upward.
    """
    n = graph.n
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        adj[u].append(v)
    src_list = range(n) if sources is None else [int(s) for s in sources]
    bc = np.zeros(n)
    for s in src_list:
        level = np.full(n, -1)
        sigma = np.zeros(n)
        level[s], sigma[s] = 0, 1.0
        frontier, d = [s], 0
        while frontier:
            nxt = []
            for u in frontier:
                for v in adj[u]:
                    if level[v] == -1:
                        level[v] = d + 1
                        nxt.append(v)
                    if level[v] == d + 1:
                        sigma[v] += sigma[u]
            frontier, d = nxt, d + 1
        max_level = d - 1
        delta = np.zeros(n)
        start = max_level - 1 if skip_deepest_level else max_level
        for depth in range(start, 0, -1):
            for v in range(n):
                if level[v] != depth - 1:
                    continue
                for w in adj[v]:
                    if level[w] == depth:
                        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
        delta[s] = 0.0
        bc += delta
    if not graph.directed:
        bc /= 2.0
    return bc


def _buried_bug_case() -> FuzzCase:
    # A 12-vertex path (where the off-by-one bites) welded to a 7-clique of
    # noise: 19 vertices in, so an unshrunk counterexample would fail the
    # <= 10 bound.
    e = [(i, i + 1) for i in range(11)]
    e += [(12 + i, 12 + j) for i in range(7) for j in range(i + 1, 7)]
    e += [(11, 12)]
    g = Graph.from_edges(e, 19, directed=False)
    return FuzzCase(index=0, recipe="buried-path", graph=g, sources=None)


class TestInjectedBug:
    def test_scratch_copy_without_the_bug_conforms(self):
        ok_config = ExecutionConfig(
            name="scratch/fixed",
            runner=lambda g, s=None: _scratch_bc(g, s),
        )
        report = run_conformance(
            [ok_config], cases=[_buried_bug_case()],
            kernel_checks=False, metamorphic=False,
        )
        assert report.ok, [d.to_record() for d in report.divergences]

    def test_off_by_one_is_caught_with_shrunk_counterexample(self):
        broken = ExecutionConfig(
            name="scratch/off-by-one",
            runner=lambda g, s=None: _scratch_bc(g, s, skip_deepest_level=True),
        )
        report = run_conformance(
            [broken], cases=[_buried_bug_case()],
            kernel_checks=False, metamorphic=False,
        )
        assert not report.ok
        div = report.divergences[0]
        assert div.kind == "oracle-mismatch"
        assert div.config == "scratch/off-by-one"
        ce = div.counterexample
        assert ce is not None and ce["n"] <= 10, ce
        # The shrunk witness must still reproduce the divergence.
        g = counterexample_graph(ce)
        got = broken.run(g, ce["sources"])
        want = brandes_bc(g, sources=ce["sources"])
        assert not np.allclose(got, want, rtol=1e-6, atol=1e-8)

    def test_crashing_config_reported_as_exception(self):
        def crash(graph, sources=None):
            if graph.m > 2:
                raise RuntimeError("scratch kernel fell over")
            return brandes_bc(graph, sources=sources)

        report = run_conformance(
            [ExecutionConfig(name="scratch/crash", runner=crash)],
            cases=[_buried_bug_case()],
            kernel_checks=False, metamorphic=False,
        )
        assert not report.ok
        div = report.divergences[0]
        assert div.kind == "exception"
        assert "fell over" in div.detail
        assert div.counterexample["n"] <= 10


class TestMetamorphicOracles:
    def _run(self, g, sources=None):
        return brandes_bc(g, sources=sources)

    @pytest.mark.parametrize("name", sorted(METAMORPHIC_ORACLES))
    @pytest.mark.parametrize("directed", (False, True))
    def test_oracles_hold_for_brandes(self, name, directed):
        rng = np.random.default_rng(11)
        g = Graph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5)], 6,
            directed=directed)
        assert METAMORPHIC_ORACLES[name](self._run, g, rng) is None

    def test_relabel_catches_label_dependence(self):
        rng = np.random.default_rng(0)
        g = Graph.from_edges([(0, 1), (1, 2)], 3, directed=False)
        labels = lambda graph, sources=None: np.arange(graph.n, dtype=float)
        assert METAMORPHIC_ORACLES["relabel"](labels, g, rng) is not None

    def test_pendant_catches_nonzero_leaf(self):
        rng = np.random.default_rng(0)
        g = Graph.from_edges([(0, 1), (1, 2)], 3, directed=False)
        ones = lambda graph, sources=None: np.ones(graph.n)
        assert "pendant" in METAMORPHIC_ORACLES["pendant"](ones, g, rng)

    def test_union_catches_cross_component_leakage(self):
        rng = np.random.default_rng(0)
        g = Graph.from_edges([(0, 1), (1, 2)], 3, directed=False)

        def leaky(graph, sources=None):
            bc = brandes_bc(graph, sources=sources)
            return bc + (graph.n > 3)  # drifts once the union grows the graph
        assert METAMORPHIC_ORACLES["disjoint-union"](leaky, g, rng) is not None

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_sigma_doubling(self, kernel):
        assert check_sigma_doubling(kernel) is None


class TestGoldenCorpus:
    def test_checked_in_corpus_is_blessed(self, tmp_path):
        """Re-blessing into a scratch dir must reproduce tests/golden/
        byte-for-byte -- the corpus on disk matches its builders."""
        fresh = bless_golden(tmp_path)
        # other golden artifacts (the canary budget spec) share the
        # directory; only corpus-schema files are bless products
        pinned = sorted(
            p for p in golden_dir().glob("*.json")
            if json.loads(p.read_text()).get("schema")
            == "repro/conformance/golden/v1"
        )
        assert [p.name for p in sorted(fresh)] == [p.name for p in pinned]
        for new, old in zip(sorted(fresh), pinned):
            assert new.read_bytes() == old.read_bytes(), old.name

    def test_corpus_passes_for_default_configs(self):
        configs = filter_configs(default_configs(),
                                 ["sccooc/b1", "veccsc/bauto", "sequential"])
        assert check_golden(configs) == []

    def test_load_golden_case_roundtrip(self):
        path = golden_dir() / "asym-digraph.json"
        graph, bc, rec = load_golden_case(path)
        assert graph.directed and graph.n == 7
        np.testing.assert_allclose(bc, brandes_bc(graph), rtol=1e-12, atol=0)
        assert rec["schema"] == "repro/conformance/golden/v1"

    def test_corrupted_vector_is_caught(self, tmp_path):
        bless_golden(tmp_path)
        path = tmp_path / "path-5.json"
        rec = json.loads(path.read_text())
        rec["bc"][2] += 0.5
        path.write_text(json.dumps(rec))
        configs = filter_configs(default_configs(), ["sequential"])
        divs = check_golden(configs, tmp_path)
        assert any(d.kind == "golden-mismatch" and "path-5" in d.case
                   for d in divs)

    def test_missing_corpus_is_reported(self, tmp_path):
        divs = check_golden(default_configs(), tmp_path / "empty")
        assert len(divs) == 1 and divs[0].kind == "golden-missing"

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="schema"):
            load_golden_case(path)


class TestHarnessRuns:
    def test_small_clean_run(self):
        configs = filter_configs(default_configs(),
                                 ["sccsc/b4", "sccooc/bauto", "sequential"])
        report = run_conformance(configs, seed=0, budget=6)
        assert report.ok, [d.to_record() for d in report.divergences]
        assert report.cases_run == 6
        assert report.checks_run > 6 * len(configs)
        records = report.to_records()
        assert records[0]["schema"] == "repro/conformance/report/v1"
        assert records[-1]["ok"] is True

    def test_time_limit_stops_early(self):
        configs = filter_configs(default_configs(), ["sequential"])
        report = run_conformance(configs, seed=0, budget=10_000,
                                 time_limit_s=0.5)
        assert report.stopped_early
        assert report.cases_run < 10_000

    @pytest.mark.slow
    def test_fuzz_soak_all_configs(self):
        """The nightly-able soak: every registered config, a real budget."""
        report = run_conformance(seed=1, budget=48)
        assert report.ok, [d.to_record() for d in report.divergences]
        assert report.cases_run == 48


class TestConformanceCLI:
    def test_smoke_run_with_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.jsonl"
        rc = main(["conformance", "--seed", "0", "--budget", "3",
                   "--config", "sequential", "--skip-golden",
                   "--report", str(out)])
        assert rc == 0
        assert "conformance[graphs]: 3 fuzz cases" in capsys.readouterr().out
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records[0]["type"] == "conformance_run"
        assert records[-1] == {
            "type": "summary", "cases_run": 3,
            "checks_run": records[-1]["checks_run"], "divergences": 0,
            "elapsed_s": records[-1]["elapsed_s"], "stopped_early": False,
            "ok": True, "recipes": "graphs",
        }

    def test_bless_writes_corpus(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["conformance", "--bless", "--golden-dir", str(tmp_path)])
        assert rc == 0
        assert "blessed 20 golden corpus files" in capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 14
        # The edit-script corpus lands in the edits/ subdirectory.
        assert len(list((tmp_path / "edits").glob("*.json"))) == 6

    def test_golden_check_uses_golden_dir(self, tmp_path, capsys):
        from repro.cli import main

        main(["conformance", "--bless", "--golden-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["conformance", "--budget", "1", "--config", "sequential",
                   "--golden-dir", str(tmp_path)])
        assert rc == 0
        assert "golden corpus reproduced" in capsys.readouterr().out

    def test_unknown_config_exits_2(self, capsys):
        from repro.cli import main

        rc = main(["conformance", "--config", "nosuchkernel", "--budget", "1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no execution config matches" in err
        assert "sccooc/b1" in err  # lists the known configs

    def test_missing_golden_dir_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["conformance", "--budget", "1", "--config", "sequential",
                   "--golden-dir", str(tmp_path / "nowhere")])
        assert rc == 1
        assert "golden-missing" in capsys.readouterr().out
