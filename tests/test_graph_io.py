"""MatrixMarket / edge-list I/O tests."""

import numpy as np
import pytest

from repro.graphs import io
from repro.graphs.graph import Graph
from tests.conftest import random_graph


class TestMatrixMarket:
    def test_directed_roundtrip(self, tmp_path):
        g = random_graph(30, 0.1, directed=True, seed=3)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        back = io.read_matrix_market(path)
        assert back.directed
        assert back.n == g.n and back.m == g.m
        assert np.array_equal(back.src, g.src)
        assert np.array_equal(back.dst, g.dst)

    def test_undirected_roundtrip_symmetric_storage(self, tmp_path):
        g = random_graph(30, 0.1, directed=False, seed=4)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        text = path.read_text()
        assert "symmetric" in text.splitlines()[0]
        back = io.read_matrix_market(path)
        assert not back.directed
        assert back.m == g.m

    def test_header_declares_pattern(self, tmp_path):
        g = Graph([0], [1], 2, directed=True)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        assert path.read_text().startswith("%%MatrixMarket matrix coordinate pattern")

    def test_read_rejects_non_mm(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("hello\n")
        with pytest.raises(ValueError, match="not a MatrixMarket"):
            io.read_matrix_market(path)

    def test_read_rejects_dense(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(ValueError, match="coordinate"):
            io.read_matrix_market(path)

    def test_read_rejects_rectangular(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n")
        with pytest.raises(ValueError, match="square"):
            io.read_matrix_market(path)

    def test_read_with_comments(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n% another\n3 3 2\n1 2\n2 3\n"
        )
        g = io.read_matrix_market(path)
        assert g.m == 2
        assert g.src.tolist() == [0, 1]

    def test_empty_graph(self, tmp_path):
        g = Graph([], [], 4, directed=True)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        back = io.read_matrix_market(path)
        assert back.n == 4 and back.m == 0


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path):
        g = random_graph(25, 0.12, directed=True, seed=5)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        back = io.read_edge_list(path, n=g.n, directed=True)
        assert back.m == g.m
        assert np.array_equal(back.src, g.src)

    def test_roundtrip_undirected(self, tmp_path):
        g = random_graph(25, 0.12, directed=False, seed=6)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        back = io.read_edge_list(path, n=g.n, directed=False)
        assert back.m == g.m

    def test_infers_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n0 5\n2 3\n")
        g = io.read_edge_list(path)
        assert g.n == 6

    def test_comment_written(self, tmp_path):
        g = Graph([0], [1], 2, directed=True, name="tiny")
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path, comment="hello")
        assert "hello" in path.read_text()
