"""PR 6: direction-optimized traversal + tensor-core blocked SpMM.

Four claim families:

* forced-direction bit-identity -- push-only, pull-only and free adaptive
  dispatch agree bitwise on the whole golden corpus (and match the pinned
  expected BC);
* the pull kernel's early-exit discovery model -- structure-exact first-hit
  probe counts and the closed-form KernelStats built from them;
* the tensor-core kernel's tile model -- the 16x16 tile directory, MMA op
  counts and tile-fill occupancy against hand-counted tilings;
* dispatcher regret -- on a graph with dense mid-BFS levels the new kernels
  are chosen only where the shadow replay measures them fastest.

The 200-case fuzz soak (slow) pins every new kernel entry point bit-identical
to ``sccsc`` across random graphs, masks and batch widths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.conformance.fuzzer import GraphFuzzer
from repro.conformance.golden import iter_golden
from repro.core.bc import turbo_bc
from repro.core.dispatch import DIRECTION, STRATEGIES
from repro.graphs.graph import Graph
from repro.gpusim.device import Device
from repro.gpusim import warp as W
from repro.obs import telemetry as obs
from repro.obs.audit import audit_dispatch
from repro.obs.counters import counters_for_launch
from repro.obs.roofline import classify_launch
from repro.spmv import (
    pullcsc_spmm,
    pullcsc_spmm_scatter,
    pullcsc_spmv,
    pullcsc_spmv_scatter,
    sccsc_spmm,
    sccsc_spmm_scatter,
    sccsc_spmv,
    sccsc_spmv_scatter,
    tcspmm_spmm,
    tcspmm_spmm_scatter,
    tcspmm_spmv,
    tcspmm_spmv_scatter,
)
from repro.spmv.pullcsc import first_hit_probes


class TestForcedDirectionGolden:
    def test_directions_bit_identical_on_corpus(self):
        for name, graph, expected in iter_golden():
            results = {
                d: turbo_bc(graph, algorithm="adaptive", direction=d).bc
                for d in ("auto", "push", "pull")
            }
            np.testing.assert_allclose(
                results["auto"], expected, rtol=1e-6, atol=1e-9,
                err_msg=f"{name}: adaptive/auto off the pinned corpus value",
            )
            for d in ("push", "pull"):
                assert np.array_equal(results["auto"], results[d]), (
                    f"{name}: direction={d} not bit-identical to auto"
                )

    def test_direction_strategy_map_is_total(self):
        assert set(DIRECTION) == set(STRATEGIES)
        assert DIRECTION["pullcsc"] == "pull"
        assert DIRECTION["tcspmm"] == "pull"
        for k in ("sccooc", "sccsc", "veccsc"):
            assert DIRECTION[k] == "push"

    def test_direction_rejected_for_static_algorithms(self):
        g = Graph.from_edges([(0, 1), (1, 2)], 3, directed=False)
        with pytest.raises(ValueError):
            turbo_bc(g, algorithm="sccsc", direction="pull")
        with pytest.raises(ValueError):
            turbo_bc(g, algorithm="adaptive", direction="sideways")


class TestPullEarlyExit:
    def _star_graph(self):
        # Directed edges r -> c: column 3 stores rows [0, 1, 2] in order;
        # column 2 stores row [0]; columns 0 and 1 are empty.
        return Graph.from_edges([(0, 3), (1, 3), (2, 3), (0, 2)], 4,
                                directed=True)

    def test_first_hit_probe_counts_are_structure_exact(self):
        csc = self._star_graph().to_csc()
        allowed = np.ones(4, dtype=bool)
        # Frontier = {row 1}: column 3 probes rows [0, 1] before the early
        # exit (2 probes); column 2 scans its full degree (1) with no hit.
        active = np.array([False, True, False, False])
        probe, discovered = first_hit_probes(csc, allowed, active)
        assert probe.tolist() == [0, 0, 1, 2]
        assert discovered.tolist() == [False, False, False, True]
        # Masked columns probe nothing.
        probe, discovered = first_hit_probes(
            csc, np.array([True, True, True, False]), active
        )
        assert probe.tolist() == [0, 0, 1, 0]
        assert not discovered.any()
        # Frontier = {row 0}: both columns exit on their first probe.
        probe, discovered = first_hit_probes(
            csc, allowed, np.array([True, False, False, False])
        )
        assert probe.tolist() == [0, 0, 1, 1]
        assert discovered.tolist() == [False, False, True, True]

    def test_early_exit_kernel_stats_closed_form(self):
        csc = self._star_graph().to_csc()
        device = Device()
        x = np.array([0, 1, 0, 0], dtype=np.int32)
        allowed = np.ones(4, dtype=bool)
        _, launch = pullcsc_spmv(device, csc, x, allowed=allowed)
        s = launch.stats

        # Hand-derived per-column work: probe [0,0,1,2], discovered column 3
        # re-scans its full degree (3), one contributing entry (row 1 in
        # column 3).  Probe cycles 2/entry, gather 3/entry (int dtype factor
        # 1), thread base 4, plus the fused bitmap build (2 cycles/row).
        scanned = np.array([0, 0, 1, 2 + 3])
        contrib = np.array([0, 0, 0, 1])
        want_cycles = W.divergent_warp_cycles(
            scanned * 2 + contrib * 3, base_cycles=4
        ) + W.uniform_warp_cycles(4, 2)
        assert s.warp_cycles == want_cycles
        assert s.critical_warp_cycles == W.max_warp_cycles(
            scanned * 4 + contrib * 12
        )
        assert s.flops == 1  # one written output column
        assert s.mma_ops == 0

    def test_early_exit_beats_full_scan_on_dense_frontier(self):
        # A clique-ish column: the denser the frontier, the fewer probes
        # phase 1 pays, so warp cycles must be monotonically non-increasing
        # in frontier density for a fixed set of discovered columns.
        rng = np.random.default_rng(7)
        n = 64
        edges = [(int(r), int(c)) for r in range(n) for c in range(n)
                 if r != c and rng.random() < 0.3]
        csc = Graph.from_edges(edges, n, directed=True).to_csc()
        device = Device()
        allowed = np.ones(n, dtype=bool)
        dense = np.ones(n, dtype=np.int32)
        sparse = np.zeros(n, dtype=np.int32)
        sparse[0] = 1
        _, launch_dense = pullcsc_spmv(device, csc, dense, allowed=allowed)
        _, launch_sparse = pullcsc_spmv(device, csc, sparse, allowed=allowed)
        probes_dense, _ = first_hit_probes(csc, allowed, dense > 0)
        probes_sparse, _ = first_hit_probes(csc, allowed, sparse > 0)
        assert probes_dense.sum() < probes_sparse.sum()


class TestTensorCoreTiles:
    def _bipartite_block(self, extra_edge=False):
        # Rows 0..15 each point at every column 16..31: exactly one dense
        # 16x16 tile (t_row 0, t_col 1) with 256 stored entries.  The
        # optional extra edge (20 -> 5) adds a second tile with one entry.
        edges = [(r, 16 + c) for r in range(16) for c in range(16)]
        if extra_edge:
            edges.append((20, 5))
        return Graph.from_edges(edges, 32, directed=True).to_csc()

    def test_tile_plan_matches_hand_tiling(self):
        csc = self._bipartite_block()
        t_row, t_col, t_cnt = csc.tile_plan(16)
        assert t_row.tolist() == [0]
        assert t_col.tolist() == [1]
        assert t_cnt.tolist() == [256]

        csc2 = self._bipartite_block(extra_edge=True)
        t_row, t_col, t_cnt = csc2.tile_plan(16)
        # Ordered by (block-col, block-row): tile (1, 0) then (0, 1).
        assert list(zip(t_row.tolist(), t_col.tolist())) == [(1, 0), (0, 1)]
        assert t_cnt.tolist() == [1, 256]

    def test_mma_ops_and_tile_fill_dense_tile(self):
        csc = self._bipartite_block()
        device = Device()
        X = np.zeros((32, 16), dtype=np.float64)
        X[:16, :] = 1.0  # every row of the dense tile active, all 16 lanes
        _, launch = tcspmm_spmm(device, csc, X)
        s = launch.stats
        # One active tile, B=16 -> one 16x16x16 MMA op; every one of the
        # 256 entries contributes in all 16 lanes -> perfect tile fill.
        assert s.mma_ops == 1
        assert s.flops == 256 * 16
        c = counters_for_launch(launch, device.spec)
        assert c.mma_tile_fill == 1.0
        assert c.mma_ops == 1

    def test_tile_fill_fraction_sparse_tile(self):
        csc = self._bipartite_block(extra_edge=True)
        device = Device()
        X = np.ones((32, 16), dtype=np.float64)
        _, launch = tcspmm_spmm(device, csc, X)
        s = launch.stats
        # Two active tiles (256-entry dense + 1-entry), B=16 -> 2 MMA ops;
        # useful flops (256 + 1) * 16 of the 2 * 4096 issued.
        assert s.mma_ops == 2
        assert s.flops == 257 * 16
        c = counters_for_launch(launch, device.spec)
        assert c.mma_tile_fill == pytest.approx(257 * 16 / (2 * 4096))

    def test_spmv_single_lane_fill(self):
        csc = self._bipartite_block()
        device = Device()
        x = np.zeros(32, dtype=np.float64)
        x[:16] = 1.0
        _, launch = tcspmm_spmv(device, csc, x)
        assert launch.stats.mma_ops == 1  # ceil(1/16) per active tile
        c = counters_for_launch(launch, device.spec)
        assert c.mma_tile_fill == pytest.approx(256 / 4096)  # 1 of 16 lanes

    def test_mma_bound_classification(self):
        # Shrinking the MMA pipe makes the MMA arm the binding ceiling, so
        # the roofline classifier must attribute the launch to it.
        import dataclasses

        from repro.gpusim.device import TITAN_XP

        csc = self._bipartite_block()
        starved = dataclasses.replace(TITAN_XP, mma_tflops=1e-6)
        device = Device(starved)
        X = np.ones((32, 16), dtype=np.float64)
        _, launch = tcspmm_spmm(device, csc, X)
        assert launch.mma_time_s > 0.0
        assert classify_launch(launch) == "mma"
        c = counters_for_launch(launch, device.spec)
        assert c.mma_tflops >= 0.0
        # On the stock spec the same launch is tiny: never MMA-bound.
        _, stock = tcspmm_spmm(Device(), csc, X)
        assert classify_launch(stock) != "mma"


class TestDispatcherRegret:
    def test_new_kernels_chosen_only_where_measured_fastest(self):
        # Erdos-Renyi-ish graph with dense mid-BFS levels: the regime where
        # the direction switch matters.  With the shadow replay measuring
        # every candidate, any level that picked a new kernel must have
        # measured it fastest (zero regret attributable to PR 6 kernels).
        rng = np.random.default_rng(11)
        n = 400
        edges = set()
        while len(edges) < 4000:
            a, b = rng.integers(0, n, 2)
            if a != b:
                edges.add((int(min(a, b)), int(max(a, b))))
        g = Graph.from_edges(sorted(edges), n, directed=False)

        with obs.session(audit_dispatch=True) as tel:
            turbo_bc(g, sources=list(range(6)), algorithm="adaptive",
                     batch_size=6)
        decisions = tel.dispatch_decisions
        assert decisions, "adaptive run recorded no dispatch decisions"
        audit = audit_dispatch(decisions)
        assert audit.measured_complete

        new_chosen = [d for d in decisions if d.kernel in ("pullcsc", "tcspmm")]
        assert new_chosen, "dense-level graph never chose a PR 6 kernel"
        for d in new_chosen:
            fastest = min(d.measured_us, key=d.measured_us.get)
            assert d.measured_us[d.kernel] <= d.measured_us[fastest] * 1.001, (
                f"{d.stage} d={d.depth}: chose {d.kernel} "
                f"({d.measured_us[d.kernel]:.2f} us) but {fastest} measured "
                f"{d.measured_us[fastest]:.2f} us"
            )
        assert not any(r.chosen in ("pullcsc", "tcspmm")
                       for r in audit.regrets), audit.regrets

    def test_direction_recorded_on_decisions_and_spans(self):
        g = Graph.from_edges([(i, j) for i in range(12) for j in range(i)],
                             12, directed=False)
        with obs.session(trace=True) as tel:
            turbo_bc(g, sources=[0], algorithm="adaptive")
        assert all(d.direction == DIRECTION[d.kernel]
                   for d in tel.dispatch_decisions)
        level_attrs = [sp.attrs for root in tel.roots for sp in root.walk()
                       if sp.name == "level"]
        assert level_attrs
        fwd = [a for a in level_attrs if "forward_direction" in a]
        assert fwd, "no level span carried forward_direction"
        for a in fwd:
            assert a["forward_direction"] in ("push", "pull")
            assert 0.0 <= a["unvisited_frac"] <= 1.0
        # The density satellite: both sides of the level reported.
        sized = [a for a in level_attrs if "frontier_size" in a]
        assert sized
        for a in sized:
            assert "unvisited" in a and "frontier_frac" in a


@pytest.mark.slow
class TestNewKernelFuzzSoak:
    def test_bit_identity_vs_sccsc_200_cases(self):
        device = Device()
        checked = 0
        for case in GraphFuzzer(606).cases(200):
            g = case.graph
            if g.n == 0:
                continue
            csc = g.to_csc()
            rng = np.random.default_rng([606, case.index])
            x = rng.integers(0, 3, size=g.n).astype(np.float64)
            xs = rng.integers(0, 3, size=g.n).astype(np.float64)
            X = rng.uniform(0.0, 2.0, size=(g.n, 4))
            allowed = rng.random(g.n) < 0.5
            allowed_mm = rng.random((g.n, 4)) < 0.5

            ref, _ = sccsc_spmv(device, csc, x, allowed=allowed)
            for fn in (pullcsc_spmv, tcspmm_spmv):
                got, _ = fn(device, csc, x, allowed=allowed)
                assert np.array_equal(got, ref), (case.recipe, fn.__name__)
            ref, _ = sccsc_spmv(device, csc, x)
            for fn in (pullcsc_spmv, tcspmm_spmv):
                got, _ = fn(device, csc, x)
                assert np.array_equal(got, ref), (case.recipe, fn.__name__)
            ref, _ = sccsc_spmv_scatter(device, csc, xs)
            for fn in (pullcsc_spmv_scatter, tcspmm_spmv_scatter):
                got, _ = fn(device, csc, xs)
                assert np.array_equal(got, ref), (case.recipe, fn.__name__)
            ref, _ = sccsc_spmm(device, csc, X, allowed=allowed_mm)
            for fn in (pullcsc_spmm, tcspmm_spmm):
                got, _ = fn(device, csc, X, allowed=allowed_mm)
                assert np.array_equal(got, ref), (case.recipe, fn.__name__)
            ref, _ = sccsc_spmm_scatter(device, csc, X)
            for fn in (pullcsc_spmm_scatter, tcspmm_spmm_scatter):
                got, _ = fn(device, csc, X)
                assert np.array_equal(got, ref), (case.recipe, fn.__name__)
            checked += 1
        assert checked >= 150  # the fuzzer emits some empty graphs
