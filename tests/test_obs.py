"""Observability-layer tests: span trees, metrics, exporters, and the
zero-cost / bit-identical guarantees the tier-1 suite depends on."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs, turbo_bc
from repro.core.multigpu import multi_gpu_bc
from repro.gpusim.device import Device
from repro.gpusim.kernel import KernelStats
from repro.gpusim.memory import DeviceMemory
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Tracer
from tests.conftest import random_graph


@pytest.fixture(autouse=True)
def no_leaked_session():
    """Every test must leave the global telemetry switch off."""
    yield
    assert obs.get_telemetry() is None
    obs.deactivate()


class TestTracer:
    def test_span_nesting_builds_tree(self):
        tr = Tracer()
        with tr.span("run"):
            with tr.span("source", source=3):
                with tr.span("forward"):
                    with tr.span("level", depth=1):
                        pass
                    with tr.span("level", depth=2):
                        pass
        (root,) = tr.roots
        assert root.name == "run"
        assert [s.name for s in root.walk()] == [
            "run", "source", "forward", "level", "level",
        ]
        assert root.children[0].attrs == {"source": 3}
        assert len(root.find("level")) == 2

    def test_span_times_are_ordered(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        outer = tr.roots[0]
        inner = outer.children[0]
        assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s
        assert outer.duration_s >= inner.duration_s

    def test_set_and_event(self):
        tr = Tracer()
        with tr.span("level") as sp:
            sp.set(frontier_size=7)
            sp.event("kernel", kernel="spmv")
        assert tr.roots[0].attrs["frontier_size"] == 7
        assert tr.roots[0].events == [{"name": "kernel", "kernel": "spmv"}]

    def test_finish_closes_open_spans(self):
        tr = Tracer()
        tr.span("a").__enter__()
        tr.span("b").__enter__()
        roots = tr.finish()
        assert [r.name for r in roots] == ["a"]
        assert roots[0].end_s is not None
        assert roots[0].children[0].end_s is not None

    def test_observe_memory_high_water(self):
        tr = Tracer()
        mem_used = [100]
        tr._mem_gauge = lambda: mem_used[0]
        with tr.span("run") as sp:
            tr.observe_memory(500)
            tr.observe_memory(300)
        assert sp.mem_start_bytes == 100
        assert sp.mem_peak_bytes == 500
        assert sp.mem_high_water_delta_bytes == 400

    def test_to_dict_round_trips_json(self):
        tr = Tracer()
        with tr.span("run", n=4):
            with tr.span("level", depth=1):
                pass
        d = tr.roots[0].to_dict()
        again = json.loads(json.dumps(d))
        assert again["name"] == "run"
        assert again["children"][0]["attrs"] == {"depth": 1}


class TestNoopPath:
    def test_span_is_shared_noop_when_inactive(self):
        assert obs.get_telemetry() is None
        assert obs.span("anything", a=1) is NOOP_SPAN
        with obs.span("x") as sp:
            sp.set(y=2)
            sp.event("e")

    def test_session_restores_previous(self):
        with obs.session() as outer:
            assert obs.get_telemetry() is outer
            with obs.session() as inner:
                assert obs.get_telemetry() is inner
            assert obs.get_telemetry() is outer
        assert obs.get_telemetry() is None

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.session():
                raise RuntimeError("boom")
        assert obs.get_telemetry() is None


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("launches", kernel="spmv").inc()
        reg.counter("launches", kernel="spmv").inc(2)
        reg.gauge("mem").set(10)
        reg.gauge("mem").set(4)
        h = reg.histogram("frontier")
        for v in (1, 2, 3, 900):
            h.record(v)
        d = reg.to_dict()
        assert d["counters"] == {"launches{kernel=spmv}": 3}
        assert d["gauges"]["mem"] == {"value": 4, "max": 10, "min": 4}
        hist = d["histograms"]["frontier"]
        assert hist["count"] == 4
        assert hist["sum"] == 906
        assert hist["min"] == 1 and hist["max"] == 900
        # 1 -> le_2^0; 2 -> le_2^1; 3 -> le_2^2; 900 -> le_2^10
        assert hist["buckets"] == {
            "le_2^0": 1, "le_2^1": 1, "le_2^2": 1, "le_2^10": 1,
        }

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_histogram_exact_quantiles(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):  # 1..100
            h.record(v)
        d = h.to_dict()
        assert d["p50"] == 50
        assert d["p95"] == 95
        assert d["p99"] == 99
        assert h.quantile(0.0) == 1 and h.quantile(1.0) == 100
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_quantiles_empty(self):
        h = MetricsRegistry().histogram("empty")
        d = h.to_dict()
        assert d["p50"] is None and d["p95"] is None and d["p99"] is None

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", tag="a,b=c{d}").inc()
        (key,) = reg.to_dict()["counters"]
        assert key == r"c{tag=a\,b\=c\{d\}}"
        # distinct raw values never collide after escaping
        reg.counter("c", tag="a\\,b=c{d}").inc(5)
        assert len(reg.to_dict()["counters"]) == 2


class TestRunTelemetrySchema:
    def test_bc_run_snapshot_contents(self, small_undirected):
        with obs.session() as tel:
            res = turbo_bc(small_undirected, device=Device())
        snap = tel.snapshot()
        assert snap["schema"] == "repro.obs/metrics/v1"
        counters = snap["metrics"]["counters"]
        launch_total = sum(
            v for k, v in counters.items() if k.startswith("kernel_launches")
        )
        assert launch_total == res.stats.kernel_launches
        assert snap["metrics"]["histograms"]["frontier_size"]["count"] > 0
        assert snap["metrics"]["histograms"]["bfs_depth"]["count"] == res.stats.sources
        assert snap["run_peak_memory_bytes"] == res.stats.peak_memory_bytes
        glt = snap["per_kernel_glt_gbs"]
        assert "bfs_update" in glt and glt["bfs_update"] > 0
        assert res.telemetry is tel

    def test_span_taxonomy_of_a_run(self, small_undirected):
        with obs.session() as tel:
            turbo_bc(small_undirected, sources=[0, 1], device=Device())
        (run,) = tel.roots
        assert run.name == "bc_run"
        assert run.attrs["sources"] == 2
        sources = run.children
        assert [s.name for s in sources] == ["source", "source"]
        stages = [c.name for c in sources[0].children]
        assert stages == ["forward", "backward"]
        levels = sources[0].children[0].children
        assert all(s.name == "level" for s in levels)
        assert levels[0].attrs["depth"] == 1
        kernel_events = [e for e in levels[0].events if e["name"] == "kernel"]
        assert {e["kernel"] for e in kernel_events} >= {"bfs_update", "sync_readback"}
        # spans carry gpu time and the run span dominates its children
        assert run.gpu_time_s >= sources[0].gpu_time_s > 0

    def test_batched_run_has_batch_spans(self, small_undirected):
        with obs.session() as tel:
            turbo_bc(
                small_undirected, sources=[0, 1, 2, 3], batch_size=2, device=Device()
            )
        (run,) = tel.roots
        assert run.attrs["batch_size"] == 2
        batches = [c for c in run.children if c.name == "batch"]
        assert len(batches) == 2
        assert [c.name for c in batches[0].children] == ["forward", "backward"]

    def test_multigpu_device_spans(self, small_undirected):
        with obs.session() as tel:
            multi_gpu_bc(small_undirected, n_devices=2, sources=[0, 1, 2])
        devices = [r for r in tel.roots if r.name == "device"]
        assert len(devices) == 2
        assert devices[0].attrs["sources"] == 2  # LPT on equal costs: 0, 2
        assert devices[1].attrs["sources"] == 1
        assert all(d.children[0].name == "bc_run" for d in devices)


class TestParity:
    """Telemetry on vs off must not change results or modeled work."""

    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_bc_vectors_bit_identical(self, batch_size):
        g = random_graph(40, 0.1, directed=False, seed=7)
        base = turbo_bc(g, batch_size=batch_size, device=Device())
        with obs.session():
            traced = turbo_bc(g, batch_size=batch_size, device=Device())
        assert np.array_equal(base.bc, traced.bc)
        assert base.stats.kernel_launches == traced.stats.kernel_launches
        assert base.stats.gpu_time_s == traced.stats.gpu_time_s
        assert base.stats.peak_memory_bytes == traced.stats.peak_memory_bytes

    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_ledger_keeps_parity(self, batch_size, tmp_path):
        """The ledger hook (PR 10) must not change results or modeled work."""
        g = random_graph(40, 0.1, directed=False, seed=7)
        base = turbo_bc(g, batch_size=batch_size, device=Device())
        with obs.session(ledger=tmp_path / "ledger.jsonl"):
            traced = turbo_bc(g, batch_size=batch_size, device=Device())
        assert np.array_equal(base.bc, traced.bc)
        assert base.stats.kernel_launches == traced.stats.kernel_launches
        assert base.stats.gpu_time_s == traced.stats.gpu_time_s
        assert base.stats.peak_memory_bytes == traced.stats.peak_memory_bytes
        # and the record mirrors the untraced run's modeled work exactly
        (rec,) = obs.read_ledger(tmp_path / "ledger.jsonl")
        assert rec["metrics"]["gpu_time_s"] == base.stats.gpu_time_s
        assert rec["metrics"]["kernel_launches"] == base.stats.kernel_launches
        assert (rec["metrics"]["peak_memory_bytes"]
                == base.stats.peak_memory_bytes)

    def test_untraced_result_has_no_telemetry(self, small_undirected):
        res = turbo_bc(small_undirected, sources=0)
        assert res.telemetry is None

    @pytest.mark.parametrize("algorithm", ["veccsc", "adaptive"])
    def test_counter_emission_keeps_parity(self, algorithm):
        """The hardware-counter hooks (PR 5) must not change modeled work."""
        g = random_graph(40, 0.1, directed=True, seed=11)
        base = turbo_bc(g, algorithm=algorithm, device=Device())
        with obs.session():
            traced = turbo_bc(g, algorithm=algorithm, device=Device())
        assert np.array_equal(base.bc, traced.bc)
        assert base.stats.kernel_launches == traced.stats.kernel_launches
        assert base.stats.gpu_time_s == traced.stats.gpu_time_s
        assert base.stats.peak_memory_bytes == traced.stats.peak_memory_bytes

    def test_audit_dispatch_keeps_parity(self):
        """Shadow replays must not leak into the main device or metrics."""
        g = random_graph(50, 0.15, directed=False, seed=3)
        base = turbo_bc(g, algorithm="adaptive", device=Device())
        with obs.session() as plain_tel:
            plain = turbo_bc(g, algorithm="adaptive", device=Device())
        with obs.session(audit_dispatch=True) as audit_tel:
            audited = turbo_bc(g, algorithm="adaptive", device=Device())
        assert np.array_equal(base.bc, audited.bc)
        assert base.stats.kernel_launches == audited.stats.kernel_launches
        assert base.stats.gpu_time_s == audited.stats.gpu_time_s
        assert plain.stats.kernel_launches == audited.stats.kernel_launches
        # identical metric snapshots: the replays recorded nothing
        assert plain_tel.snapshot()["metrics"] == audit_tel.snapshot()["metrics"]
        # but the audited run measured every strategy on every decision
        assert audit_tel.dispatch_decisions
        assert all(
            len(d.measured_us) == len(d.est_us)
            for d in audit_tel.dispatch_decisions
        )
        assert all(
            len(d.measured_us) == 1 for d in plain_tel.dispatch_decisions
        )


class TestExporters:
    def _run(self):
        g = random_graph(30, 0.12, directed=False, seed=9)
        with obs.session() as tel:
            turbo_bc(g, sources=[0, 1], device=Device())
        return tel

    def test_chrome_trace_round_trip(self, tmp_path):
        tel = self._run()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, tel)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["otherData"]["schema"] == "repro.obs/trace/v1"
        x = [e for e in events if e["ph"] == "X"]
        assert all({"name", "ts", "dur", "pid", "tid"} <= e.keys() for e in x)
        # spans nest: every source span lies within the bc_run span
        run = next(e for e in x if e["name"] == "bc_run")
        for e in (e for e in x if e["name"] == "source"):
            assert run["ts"] <= e["ts"]
            assert e["ts"] + e["dur"] <= run["ts"] + run["dur"] + 1e-6
        # kernels render on the modeled-GPU track, memory as counter events
        tids = {e["tid"] for e in x}
        assert len(tids) == 2
        assert any(e["ph"] == "C" and e["name"] == "device_mem_used" for e in events)

    def test_chrome_trace_counter_tracks(self, tmp_path):
        tel = self._run()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, tel)
        events = json.loads(path.read_text())["traceEvents"]
        gpu_tid = next(
            e["tid"] for e in events
            if e["ph"] == "M" and e["args"]["name"] == "gpu (modeled)"
        )
        occ = [e for e in events if e["ph"] == "C" and e["name"] == "occupancy"]
        bw = [e for e in events if e["ph"] == "C" and e["name"] == "dram_gbs"]
        assert occ and bw
        assert all(e["tid"] == gpu_tid for e in occ + bw)
        assert all(0.0 <= e["args"]["fraction"] <= 1.0 for e in occ)
        # one counter sample per kernel event that carries the fields
        kernels = [e for e in events if e["ph"] == "X" and e["tid"] == gpu_tid]
        assert len(occ) == len(kernels) == len(bw)

    def test_jsonl_round_trip(self, tmp_path):
        tel = self._run()
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(path, tel)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "event", "memory"}
        spans = [r for r in records if r["type"] == "span"]
        assert spans[0]["name"] == "bc_run" and spans[0]["depth"] == 0
        assert {s["name"] for s in spans} >= {"source", "forward", "backward", "level"}

    def test_snapshot_is_json_serialisable(self):
        tel = self._run()
        json.dumps(tel.snapshot())


class TestProfilerAggregates:
    def test_summaries_match_per_name_summary(self, device):
        for i in range(5):
            device.launch(KernelStats(name="a", dram_read_bytes=32 * (i + 1),
                                      requested_load_bytes=64, warp_cycles=10))
            device.launch(KernelStats(name="b", dram_write_bytes=32))
        by_name = {s.name: s for s in device.profiler.summaries()}
        for name in ("a", "b"):
            assert by_name[name] == device.profiler.summary(name)

    def test_report_includes_totals_and_glt(self, device):
        device.launch(KernelStats(name="spmv", dram_read_bytes=1 << 20,
                                  requested_load_bytes=1 << 22))
        device.launch(KernelStats(name="spmv", dram_read_bytes=1 << 20))
        report = device.profiler.report()
        lines = report.splitlines()
        assert "GLT(GB/s)" in lines[0]
        spmv_line = next(line for line in lines if line.startswith("spmv"))
        assert " 2 " in spmv_line  # launch count column
        assert lines[-1].startswith("total")

    def test_total_time_is_o1_and_consistent(self, device):
        for _ in range(100):
            device.launch(KernelStats(name="k", warp_cycles=123))
        expected = sum(l.time_s for l in device.profiler.launches)
        assert device.profiler.total_time_s() == expected
        device.profiler.clear()
        assert device.profiler.total_time_s() == 0.0


class TestRunPeak:
    def test_reset_run_peak_rebases(self):
        mem = DeviceMemory(10_000)
        a = mem.alloc("a", 1000, np.int8)
        mem.free(a)
        assert mem.peak_bytes == 1000
        assert mem.run_peak_bytes == 1000
        mem.reset_run_peak()
        assert mem.run_peak_bytes == 0
        mem.alloc("b", 200, np.int8)
        assert mem.run_peak_bytes == 200
        assert mem.peak_bytes == 1000  # lifetime peak unchanged

    def test_stats_report_per_run_peak_on_reused_device(self, small_undirected):
        device = Device()
        big = turbo_bc(small_undirected, sources=[0, 1, 2, 3], batch_size=4,
                       device=device)
        small = turbo_bc(small_undirected, sources=0, device=device)
        assert small.stats.peak_memory_bytes < big.stats.peak_memory_bytes
        assert device.memory.peak_bytes == big.stats.peak_memory_bytes


class TestCliTelemetryFlags:
    def test_bc_writes_trace_metrics_stats(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs import io

        g = random_graph(30, 0.12, directed=False, seed=5)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        stats = tmp_path / "s.json"
        assert main([
            "bc", str(path), "--source", "0",
            "--trace-out", str(trace),
            "--metrics-json", str(metrics),
            "--stats-json", str(stats),
        ]) == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"bc_run", "source", "forward", "level"} <= names
        snap = json.loads(metrics.read_text())
        assert snap["run_peak_memory_bytes"] > 0
        st = json.loads(stats.read_text())
        assert st["schema"] == "repro/bc_run_stats/v1"
        assert st["kernel_launches"] > 0
        assert obs.get_telemetry() is None  # CLI deactivated its session

    def test_stats_json_without_telemetry(self, tmp_path):
        from repro.cli import main
        from repro.graphs import io

        g = random_graph(20, 0.15, directed=True, seed=6)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        stats = tmp_path / "s.json"
        assert main(["bc", str(path), "--source", "0",
                     "--stats-json", str(stats)]) == 0
        st = json.loads(stats.read_text())
        assert st["sources"] == 1
        assert st["peak_memory_bytes"] > 0

    def test_jsonl_trace_out(self, tmp_path):
        from repro.cli import main
        from repro.graphs import io

        g = random_graph(20, 0.15, directed=False, seed=8)
        path = tmp_path / "g.mtx"
        io.write_matrix_market(g, path)
        trace = tmp_path / "t.jsonl"
        assert main(["bc", str(path), "--source", "0",
                     "--trace-out", str(trace)]) == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert records[0]["type"] == "span" and records[0]["name"] == "bc_run"


class TestBenchTelemetry:
    def test_experiment_row_snapshot(self):
        from repro.bench.runner import run_bc_per_vertex
        from repro.graphs import suite

        entry = suite.get("mycielskian15")
        try:
            row = run_bc_per_vertex(
                entry, systems=(), verify=False, collect_telemetry=True
            )
        finally:
            suite.clear_graph_cache()
        assert row.telemetry is not None
        assert row.telemetry["schema"] == "repro.obs/metrics/v1"
        assert row.telemetry["run_peak_memory_bytes"] > 0
        assert obs.get_telemetry() is None
