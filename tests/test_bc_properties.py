"""Property-based betweenness-centrality invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.brandes import brandes_bc
from repro.core.bc import turbo_bc
from repro.graphs.graph import Graph

settings.register_profile("repro-bc", deadline=None, max_examples=25)
settings.load_profile("repro-bc")


@st.composite
def small_graphs(draw, max_n=16):
    n = draw(st.integers(min_value=2, max_value=max_n))
    directed = draw(st.booleans())
    m = draw(st.integers(min_value=0, max_value=3 * n))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return Graph(np.asarray(src), np.asarray(dst), n, directed=directed)


def all_pairs_distances(graph):
    import networkx as nx

    return dict(nx.all_pairs_shortest_path_length(graph.to_networkx()))


@given(small_graphs())
def test_turbo_matches_brandes(g):
    res = turbo_bc(g, forward_dtype=np.int64, backward_dtype=np.float64)
    np.testing.assert_allclose(res.bc, brandes_bc(g), rtol=1e-9, atol=1e-9)


@given(small_graphs())
def test_bc_nonnegative(g):
    assert (turbo_bc(g, forward_dtype=np.int64).bc >= -1e-9).all()


@given(small_graphs())
def test_bc_sum_equals_interior_path_length(g):
    """Sum of vertex BC == sum over connected ordered pairs of (d(s,t) - 1).

    Every shortest path from s to t distributes exactly d(s, t) - 1 units
    of dependency over its interior vertices; Brandes' aggregation preserves
    the total (undirected graphs halve both sides identically).
    """
    res = turbo_bc(g, forward_dtype=np.int64, backward_dtype=np.float64)
    dist = all_pairs_distances(g)
    total = sum(
        d - 1
        for s, targets in dist.items()
        for t, d in targets.items()
        if t != s and d >= 1
    )
    if not g.directed:
        total /= 2
    np.testing.assert_allclose(res.bc.sum(), total, rtol=1e-9, atol=1e-9)


@given(small_graphs())
def test_leaves_have_zero_bc(g):
    """A vertex with (in+out) degree <= 1 lies on no path interior."""
    res = turbo_bc(g, forward_dtype=np.int64)
    total_deg = g.out_degree() + g.in_degree()
    leaves = total_deg <= (2 if not g.directed else 1)
    assert np.allclose(res.bc[leaves], 0.0, atol=1e-9)


@given(small_graphs(), st.integers(0, 10**6))
def test_kernel_choice_never_changes_result(g, seed):
    algs = ("sccooc", "sccsc", "veccsc")
    results = [
        turbo_bc(g, algorithm=a, forward_dtype=np.int64, backward_dtype=np.float64).bc
        for a in algs
    ]
    for other in results[1:]:
        np.testing.assert_allclose(results[0], other, rtol=1e-12, atol=1e-12)


@given(small_graphs())
def test_source_decomposition(g):
    """BC over all sources == sum of per-source contributions."""
    full = turbo_bc(g, forward_dtype=np.int64, backward_dtype=np.float64).bc
    parts = np.zeros(g.n)
    for s in range(g.n):
        parts += turbo_bc(
            g, sources=s, forward_dtype=np.int64, backward_dtype=np.float64
        ).bc
    np.testing.assert_allclose(full, parts, rtol=1e-9, atol=1e-9)
