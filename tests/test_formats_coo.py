"""COO / COOC format tests."""

import numpy as np
import pytest

from repro.formats import COOCMatrix, COOMatrix
from repro.formats.base import INDEX_DTYPE, as_index_array


class TestAsIndexArray:
    def test_casts_to_int32(self):
        out = as_index_array([1, 2, 3], name="x")
        assert out.dtype == INDEX_DTYPE

    def test_accepts_empty(self):
        assert as_index_array([], name="x").size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            as_index_array([0, -1], name="x")

    def test_rejects_too_large_for_int32(self):
        with pytest.raises(ValueError, match="too large"):
            as_index_array([2**31], name="x")

    def test_rejects_non_integer_floats(self):
        with pytest.raises(ValueError, match="integers"):
            as_index_array([0.5], name="x")

    def test_accepts_integral_floats(self):
        out = as_index_array(np.array([1.0, 2.0]), name="x")
        assert out.tolist() == [1, 2]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_index_array(np.zeros((2, 2)), name="x")


class TestCOOMatrix:
    def test_dense_roundtrip(self):
        mat = COOMatrix([0, 1, 2], [1, 2, 0], (3, 3))
        dense = mat.to_dense()
        assert dense.tolist() == [[0, 1, 0], [0, 0, 1], [1, 0, 0]]

    def test_nnz_and_memory(self):
        mat = COOMatrix([0, 1], [1, 0], (2, 2))
        assert mat.nnz == 2
        assert mat.memory_words == 4
        assert mat.memory_bytes == 16

    def test_transpose(self):
        mat = COOMatrix([0, 1], [1, 2], (2, 3))
        t = mat.transpose()
        assert t.shape == (3, 2)
        assert np.array_equal(t.to_dense(), mat.to_dense().T)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            COOMatrix([0, 1], [1], (2, 2))

    def test_rejects_out_of_range_row(self):
        with pytest.raises(ValueError, match="out of range"):
            COOMatrix([5], [0], (2, 2))

    def test_rejects_out_of_range_col(self):
        with pytest.raises(ValueError, match="out of range"):
            COOMatrix([0], [5], (2, 2))

    def test_empty_matrix(self):
        mat = COOMatrix([], [], (4, 4))
        assert mat.nnz == 0
        assert mat.to_dense().sum() == 0

    def test_repr_mentions_shape_and_nnz(self):
        r = repr(COOMatrix([0], [1], (2, 2)))
        assert "2, 2" in r and "nnz=1" in r


class TestCOOCMatrix:
    def test_column_major_order_required(self):
        with pytest.raises(ValueError, match="sorted by column"):
            COOCMatrix([0, 0], [1, 0], (2, 2))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            COOCMatrix([0, 0], [1, 1], (2, 2))

    def test_valid_construction(self):
        mat = COOCMatrix([1, 0, 2], [0, 1, 1], (3, 3))
        assert mat.nnz == 3

    def test_memory_words_is_2m(self):
        mat = COOCMatrix([1, 0, 2], [0, 1, 1], (3, 3))
        assert mat.memory_words == 6

    def test_column_counts(self):
        mat = COOCMatrix([1, 0, 2], [0, 1, 1], (3, 3))
        assert mat.column_counts().tolist() == [1, 2, 0]

    def test_row_counts(self):
        mat = COOCMatrix([1, 0, 2], [0, 1, 1], (3, 3))
        assert mat.row_counts().tolist() == [1, 1, 1]

    def test_to_coo(self):
        mat = COOCMatrix([1, 0], [0, 1], (2, 2))
        coo = mat.to_coo()
        assert np.array_equal(coo.to_dense(), mat.to_dense())

    def test_unhashable(self):
        mat = COOCMatrix([], [], (2, 2))
        with pytest.raises(TypeError):
            hash(mat)

    def test_structural_equality(self):
        a = COOCMatrix([1, 0], [0, 1], (2, 2))
        b = COOCMatrix([1, 0], [0, 1], (2, 2))
        assert a == b

    def test_figure1_example(self):
        """The paper's Figure 1 matrix: directed 4-vertex example.

        Edges (one-based in the paper): column-compressed structure with
        row indices grouped per column.  We verify the COOC row array equals
        the CSC row array ordering by construction.
        """
        from repro.formats.convert import edges_to_cooc, edges_to_csc

        edges = [(0, 1), (0, 2), (1, 3), (2, 1), (3, 0)]
        src = [e[0] for e in edges]
        dst = [e[1] for e in edges]
        cooc = edges_to_cooc(src, dst, 4)
        csc = edges_to_csc(src, dst, 4)
        assert np.array_equal(cooc.row, csc.row)
