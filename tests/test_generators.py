"""Generator tests: determinism, structure, regime."""

import numpy as np
import pytest

from repro.graphs.generators import (
    banded_jacobian_graph,
    circuit_graph,
    delaunay_graph,
    erdos_renyi_graph,
    g7jac_like,
    internet_topology_graph,
    kmer_graph,
    kronecker_graph,
    mark3jac_like,
    mycielski_graph,
    powerlaw_cluster_graph,
    preferential_attachment_digraph,
    random_regular_graph,
    rmat_edges,
    road_network_graph,
    small_world_graph,
    traffic_trace_graph,
    webgraph,
)
from repro.graphs.generators.mycielski import mycielski_order
from repro.graphs.generators.road import subdivide_edges
from repro.graphs.generators.util import chung_lu_edges, powerlaw_degrees, resolve_rng
from repro.graphs.metrics import bfs_depth, classify_regularity, degree_stats


class TestMycielski:
    def test_known_orders(self):
        # M2=K2, M3=C5, M4=Grötzsch graph (11 vertices, 20 edges)
        assert mycielski_graph(2).n == 2
        g3 = mycielski_graph(3)
        assert g3.n == 5 and g3.num_undirected_edges == 5
        g4 = mycielski_graph(4)
        assert g4.n == 11 and g4.num_undirected_edges == 20

    def test_order_formula(self):
        for k in range(2, 12):
            assert mycielski_graph(k).n == mycielski_order(k) == 3 * 2 ** (k - 2) - 1

    def test_paper_nnz_match(self):
        """mycielskian15's published nnz is 11,111,110 -- our construction
        must reproduce it exactly (cheap recurrence check at small k)."""
        e = 1
        n = 2
        for _ in range(13):  # up to k = 15
            e = 3 * e + n
            n = 2 * n + 1
        assert n == 24575 and 2 * e == 11_111_110

    def test_triangle_free(self):
        g = mycielski_graph(6)
        a = g.to_csc().to_dense().astype(np.int64)
        assert np.trace(a @ a @ a) == 0

    def test_deterministic(self):
        a, b = mycielski_graph(8), mycielski_graph(8)
        assert np.array_equal(a.src, b.src)

    def test_rejects_k_below_2(self):
        with pytest.raises(ValueError):
            mycielski_graph(1)

    def test_bfs_depth_small(self):
        assert bfs_depth(mycielski_graph(10), 0) <= 3


class TestKronecker:
    def test_size(self):
        g = kronecker_graph(10, edge_factor=8, seed=1)
        assert g.n == 1024

    def test_seeded_determinism(self):
        a = kronecker_graph(10, seed=5)
        b = kronecker_graph(10, seed=5)
        assert np.array_equal(a.src, b.src)

    def test_different_seeds_differ(self):
        a = kronecker_graph(10, seed=5)
        b = kronecker_graph(10, seed=6)
        assert a.m != b.m or not np.array_equal(a.src, b.src)

    def test_rmat_edges_in_range(self):
        src, dst = rmat_edges(8, 1000, seed=2)
        assert src.max() < 256 and dst.max() < 256
        assert src.min() >= 0 and dst.min() >= 0

    def test_rmat_skew(self):
        """Quadrant A bias concentrates edges at low vertex ids."""
        src, dst = rmat_edges(12, 20000, seed=3)
        assert (src < 2048).mean() > 0.6

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError, match="sum below 1"):
            rmat_edges(4, 10, probs=(0.5, 0.4, 0.2))

    def test_heavy_tail(self):
        g = kronecker_graph(12, edge_factor=16, seed=4)
        s = degree_stats(g)
        assert s.max > 10 * s.mean


class TestDelaunay:
    def test_size_and_planarity_bound(self):
        g = delaunay_graph(10, seed=1)
        assert g.n == 1024
        assert g.num_undirected_edges <= 3 * g.n - 6  # planar bound

    def test_connected(self):
        g = delaunay_graph(8, seed=2)
        from repro.graphs.metrics import bfs_levels

        assert (bfs_levels(g, 0) >= 0).all()

    def test_near_constant_degree(self):
        s = degree_stats(delaunay_graph(11, seed=3))
        assert 5 <= s.mean <= 7 and s.std < 3

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            delaunay_graph(1)


class TestSmallWorld:
    def test_mean_degree(self):
        g = small_world_graph(2000, k=10, seed=1)
        assert degree_stats(g).mean == pytest.approx(10, abs=0.5)

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError, match="even"):
            small_world_graph(100, k=5)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError, match="rewire_p"):
            small_world_graph(100, k=4, rewire_p=2.0)

    def test_no_rewiring_is_ring_lattice(self):
        g = small_world_graph(100, k=4, rewire_p=0.0)
        assert degree_stats(g).std == pytest.approx(0.0)

    def test_regular_regime(self):
        assert classify_regularity(small_world_graph(3000, seed=2)) == "regular"


class TestRoad:
    def test_subdivide_edges(self):
        src = np.array([0]); dst = np.array([1])
        s, d, n = subdivide_edges(src, dst, 2, 3)
        assert n == 4 and s.size == 3  # path 0 - 2 - 3 - 1

    def test_subdivide_identity(self):
        src = np.array([0]); dst = np.array([1])
        s, d, n = subdivide_edges(src, dst, 2, 1)
        assert n == 2 and s.size == 1

    def test_depth_scales_with_segments(self):
        shallow = road_network_graph(16, 16, segments=2, seed=1)
        deep = road_network_graph(16, 16, segments=8, seed=1)
        assert bfs_depth(deep) > 2 * bfs_depth(shallow)

    def test_degree_profile(self):
        s = degree_stats(road_network_graph(24, 24, segments=5, seed=2))
        assert s.max <= 4 and s.mean < 2.5

    def test_connected(self):
        from repro.graphs.metrics import bfs_levels

        g = road_network_graph(12, 12, segments=3, keep_prob=0.5, seed=3)
        assert (bfs_levels(g, 0) >= 0).all()

    def test_rejects_tiny_lattice(self):
        with pytest.raises(ValueError):
            road_network_graph(1, 5)


class TestTrafficTrace:
    def test_hub_degree(self):
        g = traffic_trace_graph(50_000, seed=1)
        s = degree_stats(g)
        assert s.max > 0.3 * g.n  # a dominant hub
        assert s.mean < 4

    def test_scf_regular_despite_hub(self):
        assert classify_regularity(traffic_trace_graph(50_000, seed=2)) == "regular"

    def test_depth_regime(self):
        assert 3 <= bfs_depth(traffic_trace_graph(50_000, seed=3), 0) <= 40

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            traffic_trace_graph(4)


class TestJacobians:
    def test_mark3jac_profile(self):
        g = mark3jac_like(8000, seed=1)
        s = degree_stats(g)
        assert g.directed
        assert 4 <= s.mean <= 8
        assert s.max >= 40

    def test_g7jac_profile(self):
        g = g7jac_like(6000, seed=1)
        s = degree_stats(g)
        assert 10 <= s.mean <= 18
        assert s.max >= 100

    def test_band_reaches_everything(self):
        from repro.graphs.metrics import bfs_levels

        g = banded_jacobian_graph(500, band=2, long_range=0, seed=1)
        assert (bfs_levels(g, 0) >= 0).all()

    def test_rejects_zero_band(self):
        with pytest.raises(ValueError):
            banded_jacobian_graph(100, band=0)


class TestCircuitInternetSocial:
    def test_circuit_global_rails(self):
        g = circuit_graph(20_000, seed=1)
        assert degree_stats(g).max >= 150

    def test_internet_powerlaw_hubs(self):
        g = internet_topology_graph(20_000, seed=1)
        s = degree_stats(g)
        assert s.mean < 4 and s.max > 20

    def test_social_mean_degree(self):
        g = powerlaw_cluster_graph(20_000, mean_degree=5.0, seed=1)
        assert degree_stats(g).mean == pytest.approx(5.0, rel=0.5)

    def test_kmer_bounded_degree_and_depth(self):
        g = kmer_graph(20_000, seed=1)
        assert degree_stats(g).max <= 20
        assert bfs_depth(g, 0) > 30

    def test_webgraph_locality(self):
        g = webgraph(20_000, seed=1)
        jumps = np.abs(g.src.astype(np.int64) - g.dst.astype(np.int64))
        assert np.median(jumps) < g.n // 50  # most links are local

    def test_pa_digraph_hubs(self):
        g = preferential_attachment_digraph(20_000, seed=1)
        assert degree_stats(g).max > 200


class TestRandomGraphs:
    def test_gnp_edge_count(self):
        g = erdos_renyi_graph(500, 0.01, directed=True, seed=1)
        expected = 500 * 500 * 0.01
        assert abs(g.m - expected) < 0.3 * expected

    def test_gnp_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_regular_degrees_bounded(self):
        g = random_regular_graph(1000, 8, seed=1)
        assert degree_stats(g).max <= 8

    def test_regular_rejects_odd_product(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_graph(5, 3)


class TestUtil:
    def test_resolve_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert resolve_rng(rng) is rng

    def test_powerlaw_degrees_range(self):
        d = powerlaw_degrees(5000, exponent=2.5, d_min=1, d_max=100, rng=resolve_rng(1))
        assert d.min() >= 1 and d.max() <= 100

    def test_powerlaw_degrees_skewed(self):
        d = powerlaw_degrees(5000, exponent=2.5, d_min=1, d_max=100, rng=resolve_rng(2))
        assert np.median(d) < d.mean()

    def test_powerlaw_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_degrees(10, exponent=1.0, d_min=1, d_max=5, rng=resolve_rng(0))

    def test_chung_lu_expected_degree(self):
        w = np.full(2000, 6.0)
        src, dst = chung_lu_edges(w, rng=resolve_rng(3))
        deg = np.bincount(src, minlength=2000) + np.bincount(dst, minlength=2000)
        assert deg.mean() == pytest.approx(6.0, rel=0.2)

    def test_chung_lu_rejects_negative(self):
        with pytest.raises(ValueError):
            chung_lu_edges(np.array([-1.0]), rng=resolve_rng(0))

    def test_chung_lu_empty(self):
        src, dst = chung_lu_edges(np.zeros(5), rng=resolve_rng(0))
        assert src.size == 0
