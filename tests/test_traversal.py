"""Frontier-traversal machinery tests (used by the CPU baselines)."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_sigma_levels,
    expand_frontier,
    out_adjacency,
)
from tests.conftest import random_graph


class TestOutAdjacency:
    def test_groups_by_source(self):
        g = Graph([0, 0, 2, 1], [1, 2, 0, 2], 3, directed=True)
        starts, nbrs = out_adjacency(g)
        assert starts.tolist() == [0, 2, 3, 4]
        assert sorted(nbrs[0:2].tolist()) == [1, 2]

    def test_cached(self):
        g = Graph([0], [1], 2, directed=True)
        assert out_adjacency(g)[1] is out_adjacency(g)[1]

    def test_isolated_vertices(self):
        g = Graph([0], [1], 5, directed=True)
        starts, _ = out_adjacency(g)
        assert starts.tolist() == [0, 1, 1, 1, 1, 1]


class TestExpandFrontier:
    def test_gathers_all_neighbours(self):
        g = Graph([0, 0, 1], [1, 2, 2], 3, directed=True)
        starts, nbrs = out_adjacency(g)
        targets, origin = expand_frontier(starts, nbrs, np.array([0, 1]))
        assert sorted(targets.tolist()) == [1, 2, 2]
        assert origin.tolist() == [0, 0, 1]

    def test_empty_frontier(self):
        g = Graph([0], [1], 2, directed=True)
        starts, nbrs = out_adjacency(g)
        targets, origin = expand_frontier(starts, nbrs, np.empty(0, dtype=np.int64))
        assert targets.size == 0 and origin.size == 0

    def test_frontier_of_sinks(self):
        g = Graph([0], [1], 3, directed=True)
        starts, nbrs = out_adjacency(g)
        targets, _ = expand_frontier(starts, nbrs, np.array([1, 2]))
        assert targets.size == 0


class TestBfsSigmaLevels:
    @pytest.mark.parametrize("directed", [True, False])
    def test_matches_turbo_forward(self, directed):
        from repro.core.bfs import turbo_bfs

        g = random_graph(60, 0.06, directed=directed, seed=17)
        sigma, levels, depth, _ = bfs_sigma_levels(g, 0)
        ref = turbo_bfs(g, 0, forward_dtype=np.float64)
        np.testing.assert_array_equal(sigma, ref.sigma)
        np.testing.assert_array_equal(levels[sigma > 0], ref.levels[sigma > 0])
        assert depth == ref.depth

    def test_trace_accounts(self):
        g = Graph([0, 0, 1, 2], [1, 2, 3, 3], 4, directed=True)
        sigma, levels, depth, trace = bfs_sigma_levels(g, 0)
        assert sigma.tolist() == [1, 1, 1, 2]
        assert depth == 2
        assert trace.frontier_sizes[:2] == [1, 2]
        assert trace.frontier_edges[:2] == [2, 2]
        assert trace.discovered[:2] == [2, 1]
        # vertex 3 receives two simultaneous contributions at level 2
        assert trace.max_target_multiplicity[1] == 2

    def test_unvisited_in_edges_monotone(self):
        g = random_graph(80, 0.05, directed=False, seed=19)
        _, _, _, trace = bfs_sigma_levels(g, 0)
        ue = trace.unvisited_in_edges
        assert all(a >= b for a, b in zip(ue, ue[1:]))

    def test_source_out_of_range(self):
        g = Graph([0], [1], 2, directed=True)
        with pytest.raises(ValueError):
            bfs_sigma_levels(g, 5)

    def test_isolated_source(self):
        g = Graph([1], [0], 3, directed=True)
        sigma, levels, depth, trace = bfs_sigma_levels(g, 0)
        assert depth == 0
        assert sigma.tolist() == [1, 0, 0]
