#!/usr/bin/env python
"""Will this graph fit my GPU?  Footprint planning without a GPU.

The paper's Table 4 result -- TurboBC computing BC on graphs that OOM
gunrock -- comes down to array-footprint arithmetic.  This example uses the
planned-allocation mode of the simulated device to answer, for any (n, m)
and any device size: does TurboBC fit?  does gunrock?  and what is the
largest edge count TurboBC could take?

Run:  python examples/memory_planning.py [--memory-mb 12196]
"""

import argparse

from repro import DeviceSpec
from repro.graphs import suite
from repro.perf.memory_model import FootprintModel


def max_edges_for(n: int, capacity_bytes: int, fmt: str = "csc") -> int:
    """Largest m whose TurboBC array set fits the capacity (closed form)."""
    # csc: 4 * (7n + 1 + m) <= cap
    words = capacity_bytes // 4
    if fmt == "csc":
        return max(0, words - 7 * n - 1)
    return max(0, (words - 6 * n) // 2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--memory-mb", type=int, default=12196,
                        help="device global memory (default: TITAN Xp)")
    args = parser.parse_args()
    spec = DeviceSpec(global_memory_bytes=args.memory_mb * 2**20)
    cap = spec.global_memory_bytes
    print(f"device: {args.memory_mb} MB global memory\n")

    print(f"{'graph':16s} {'n':>12s} {'m':>14s} {'TurboBC':>9s} {'fit':>4s} "
          f"{'gunrock':>9s} {'fit':>4s}")
    for name in ("mycielskian19", "kron_g500-logn21", "kmer_V1r", "it-2004",
                 "GAP-twitter", "sk-2005"):
        p = suite.get(name).paper
        model = FootprintModel(p.n, p.m)
        tb, gb = model.turbobc_bytes(), model.gunrock_measured_bytes()
        print(
            f"{name:16s} {p.n:12d} {p.m:14d} "
            f"{tb / 2**30:7.2f}Gi {'yes' if tb <= cap else 'OOM':>4s} "
            f"{gb / 2**30:7.2f}Gi {'yes' if gb <= cap else 'OOM':>4s}"
        )

    sk = suite.get("sk-2005").paper
    headroom = max_edges_for(sk.n, cap)
    print(
        f"\nat n = {sk.n:,} this device can hold up to m = {headroom:,} edges "
        f"with TurboBC ({headroom / sk.m:.2f}x sk-2005) -- the paper calls "
        "sk-2005 the largest graph its TITAN Xp could take."
    )


if __name__ == "__main__":
    main()
