#!/usr/bin/env python
"""Social-network broker detection with approximate betweenness.

The paper's social-network motivation: on follower graphs, high-betweenness
accounts are the *brokers* bridging communities (not necessarily the
highest-degree celebrities).  Exact BC is O(nm); this example shows the
standard production shortcut -- source sampling -- and measures how quickly
the sampled ranking converges to the exact one, using TurboBC for both.

Run:  python examples/social_influencers.py [--users 4000]
"""

import argparse

import numpy as np

from repro import turbo_bc
from repro.graphs.generators import powerlaw_cluster_graph


def ranking_overlap(a: np.ndarray, b: np.ndarray, k: int) -> float:
    """|top-k(a) intersect top-k(b)| / k."""
    top_a = set(np.argsort(-a)[:k].tolist())
    top_b = set(np.argsort(-b)[:k].tolist())
    return len(top_a & top_b) / k


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=4000)
    parser.add_argument("--topk", type=int, default=20)
    args = parser.parse_args()

    graph = powerlaw_cluster_graph(args.users, mean_degree=6.0, seed=42)
    print(f"follower graph: {graph}")

    exact = turbo_bc(graph)
    print(f"exact BC: {exact.stats.algorithm}, modeled {exact.stats.runtime_ms:.0f} ms "
          f"({exact.stats.mteps():.0f} MTEPs, all {graph.n} sources)")

    rng = np.random.default_rng(0)
    print(f"\nsource-sampled approximation, top-{args.topk} overlap with exact:")
    print(f"{'sources':>8s} {'overlap':>8s} {'modeled ms':>11s} {'vs exact':>9s}")
    for k_sources in (16, 64, 256, 1024):
        if k_sources >= graph.n:
            break
        sources = rng.choice(graph.n, size=k_sources, replace=False)
        approx = turbo_bc(graph, sources=sources)
        # rescale sampled dependencies to the all-sources estimate
        est = approx.bc * (graph.n / k_sources)
        overlap = ranking_overlap(est, exact.bc, args.topk)
        print(
            f"{k_sources:8d} {overlap:8.2f} {approx.stats.runtime_ms:11.1f} "
            f"{approx.stats.gpu_time_s / exact.stats.gpu_time_s:9.3f}"
        )

    deg = graph.out_degree()
    top_deg = set(np.argsort(-deg)[: args.topk].tolist())
    top_bc = set(np.argsort(-exact.bc)[: args.topk].tolist())
    print(
        f"\ndegree-vs-betweenness top-{args.topk} overlap: "
        f"{len(top_deg & top_bc)}/{args.topk} "
        "(brokers are not simply the highest-degree accounts)"
    )


if __name__ == "__main__":
    main()
