#!/usr/bin/env python
"""Connectome hub analysis -- the paper's human-brain motivation.

Brain networks are modular small-world graphs: dense communities (cortical
regions) sparsely wired to each other, with a handful of "rich-club" hub
regions carrying most inter-module shortest paths.  Betweenness centrality
is the standard metric for finding those hubs (Rubinov & Sporns 2010, the
paper's reference [17]).

This example synthesises a modular connectome, computes exact BC with
TurboBC, and checks that the recovered hubs are exactly the planted
inter-module connector regions.

Run:  python examples/brain_network.py [--regions 24] [--neurons 48]
"""

import argparse

import numpy as np

from repro import Graph, turbo_bc


def modular_connectome(
    n_modules: int, module_size: int, *, hub_count: int = 4, seed: int = 7
) -> tuple[Graph, np.ndarray]:
    """A modular small-world graph with planted connector hubs.

    Returns the graph and the ids of the connector vertices.  Each module is
    a dense random community; inter-module edges are routed exclusively
    through one designated connector vertex per module, and ``hub_count`` of
    the connectors form the rich club linking distant modules.
    """
    rng = np.random.default_rng(seed)
    n = n_modules * module_size
    src, dst = [], []
    connectors = np.arange(n_modules) * module_size  # vertex 0 of each module
    # dense intra-module wiring
    for m in range(n_modules):
        base = m * module_size
        k = int(2.5 * module_size)
        a = rng.integers(0, module_size, k) + base
        b = rng.integers(0, module_size, k) + base
        src.append(a)
        dst.append(b)
    # ring of modules through their connectors
    ring_a = connectors
    ring_b = connectors[(np.arange(n_modules) + 1) % n_modules]
    src.append(ring_a)
    dst.append(ring_b)
    # rich club: long-range shortcuts between a few connectors
    club = connectors[:: max(1, n_modules // hub_count)]
    for i in range(len(club)):
        for j in range(i + 1, len(club)):
            src.append(np.array([club[i]]))
            dst.append(np.array([club[j]]))
    g = Graph(
        np.concatenate(src), np.concatenate(dst), n, directed=False,
        name="synthetic-connectome",
    )
    return g, connectors


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regions", type=int, default=24, help="number of modules")
    parser.add_argument("--neurons", type=int, default=48, help="vertices per module")
    args = parser.parse_args()

    graph, connectors = modular_connectome(args.regions, args.neurons)
    print(f"connectome: {graph} ({args.regions} modules x {args.neurons} vertices)")

    result = turbo_bc(graph)
    print(f"algorithm: {result.stats.algorithm}, "
          f"modeled GPU time {result.stats.runtime_ms:.1f} ms, "
          f"{result.stats.mteps():.0f} MTEPs")

    k = len(connectors)
    top = [v for v, _ in result.top(k)]
    recovered = len(set(top) & set(connectors.tolist()))
    print(f"\ntop-{k} BC vertices vs planted connector hubs: "
          f"{recovered}/{k} recovered")
    print("hub ranking (vertex, BC, is-planted-connector):")
    for v, score in result.top(8):
        print(f"  {v:6d} {score:12.1f} {'yes' if v in connectors else 'no'}")

    if recovered < 0.9 * k:
        raise SystemExit("hub recovery failed -- the connectome generator changed?")
    print("\nconnector hubs recovered: OK")


if __name__ == "__main__":
    main()
