#!/usr/bin/env python
"""Quickstart: betweenness centrality with TurboBC in five minutes.

Builds a small collaboration-style graph, runs TurboBC on the simulated
TITAN Xp, and shows the three things every user touches first: the BC
vector, the run statistics, and the device profiler.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device, Graph, brandes_bc, turbo_bc


def main() -> None:
    # A small undirected "collaboration network": two communities bridged
    # by vertex 4 -- the textbook high-betweenness structure.
    edges = [
        (0, 1), (0, 2), (1, 2), (2, 3), (1, 3),      # community A
        (3, 4), (4, 5),                              # the bridge
        (5, 6), (5, 7), (6, 7), (7, 8), (6, 8),      # community B
    ]
    graph = Graph.from_edges(edges, n=9, directed=False, name="two-communities")
    print(f"graph: {graph}")

    # Run TurboBC.  The kernel (scCOOC / scCSC / veCSC) is chosen from the
    # graph's scale-free metric; pass algorithm="..." to pin it.
    device = Device()  # a simulated NVIDIA TITAN Xp
    result = turbo_bc(graph, device=device)

    print(f"\nalgorithm selected: {result.stats.algorithm}")
    print("betweenness centrality:")
    for v, score in enumerate(result.bc):
        marker = " <-- bridge" if score == result.bc.max() else ""
        print(f"  vertex {v}: {score:6.2f}{marker}")

    print("\ntop-3 vertices:", result.top(3))

    # Every run is verified against the classic queue-based Brandes here:
    assert np.allclose(result.bc, brandes_bc(graph), atol=1e-4)
    print("verified against queue-based Brandes: OK")

    # Performance accounting from the simulated device:
    st = result.stats
    print(f"\nmodeled GPU time: {st.runtime_ms:.3f} ms over {st.kernel_launches} launches")
    print(f"traversal rate:   {st.mteps():.1f} MTEPs")
    print(f"peak device mem:  {st.peak_memory_bytes} B (7n + m words for CSC)")
    print("\nper-kernel profile:")
    print(device.profiler.report())


if __name__ == "__main__":
    main()
