#!/usr/bin/env python
"""Why three kernels?  The regular/irregular crossover, live.

Runs all three TurboBC SpMV kernels on one graph from each structural
regime and prints the modeled runtimes side by side with the scf metric,
reproducing the paper's Section 3.1 kernel-selection story:

* near-uniform degrees (delaunay)      -> scCSC wins;
* degree outliers over a regular bulk  -> scCOOC wins;
* heavy-tailed everywhere (mycielski)  -> veCSC wins.

Run:  python examples/kernel_selection.py
"""

from repro import select_algorithm, turbo_bc
from repro.graphs.generators import (
    delaunay_graph,
    mycielski_graph,
    traffic_trace_graph,
)
from repro.graphs.metrics import classify_regularity, degree_stats, scale_free_metric


def main() -> None:
    graphs = [
        delaunay_graph(13, seed=1),
        traffic_trace_graph(120_000, seed=2),
        mycielski_graph(13),
    ]
    print(
        f"{'graph':18s} {'regime':10s} {'scf':>8s} {'degree':>14s} "
        f"{'scCOOC':>9s} {'scCSC':>9s} {'veCSC':>9s} {'best':>8s} {'auto':>8s}"
    )
    for g in graphs:
        times = {}
        for alg in ("sccooc", "sccsc", "veccsc"):
            times[alg] = turbo_bc(g, sources=0, algorithm=alg).stats.runtime_ms
        best = min(times, key=times.get)
        auto = select_algorithm(g).name
        print(
            f"{g.name:18s} {classify_regularity(g):10s} {scale_free_metric(g):8.1f} "
            f"{str(degree_stats(g)):>14s} "
            f"{times['sccooc']:8.2f}m {times['sccsc']:8.2f}m {times['veccsc']:8.2f}m "
            f"{best:>8s} {auto:>8s}"
        )
    print("\n(m = modeled milliseconds on the simulated TITAN Xp)")


if __name__ == "__main__":
    main()
