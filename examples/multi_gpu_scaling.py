#!/usr/bin/env python
"""Multi-GPU exact BC: source-partitioned scaling.

Exact BC is embarrassingly parallel over sources, so the paper's future-work
direction (multi-GPU, following Pan et al.) reduces to replicating the graph
and dealing sources across devices.  This example sweeps 1..8 simulated
TITAN Xps on one exact-BC workload and prints the scaling curve, including
the two effects that bend it: per-device slice imbalance and the final
host-side reduction.

Run:  python examples/multi_gpu_scaling.py [--k 11]
"""

import argparse

from repro import multi_gpu_bc
from repro.graphs.generators import mycielski_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=11, help="Mycielskian order")
    args = parser.parse_args()

    graph = mycielski_graph(args.k)
    print(f"workload: exact BC on {graph} ({graph.n} sources)\n")
    base = None
    print(f"{'devices':>8s} {'makespan(ms)':>13s} {'speedup':>8s} {'efficiency':>11s}")
    for k in (1, 2, 4, 8):
        result, mg = multi_gpu_bc(graph, n_devices=k, algorithm="veccsc")
        t = result.stats.gpu_time_s
        base = base or t
        print(f"{k:8d} {t * 1e3:13.2f} {base / t:7.2f}x {mg.parallel_efficiency:11.2f}")
    print("\n(speedup < devices: slice imbalance + the O(k n) host reduction)")


if __name__ == "__main__":
    main()
