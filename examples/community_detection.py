#!/usr/bin/env python
"""Girvan-Newman community detection with linear-algebraic edge betweenness.

The classic application of *edge* betweenness: inter-community edges carry
the most shortest paths, so repeatedly removing the highest-edge-BC edge
splits a network into its communities.  This example plants a three-block
network, runs Girvan-Newman with the TurboBC-based
:func:`repro.extensions.edge_betweenness`, and checks the recovered
partition against the planted one.

Run:  python examples/community_detection.py [--blocks 3 --size 24]
"""

import argparse

import numpy as np

from repro.extensions import edge_betweenness
from repro.graphs.graph import Graph


def planted_blocks(n_blocks: int, size: int, *, bridges: int = 1, seed: int = 5):
    """Dense blocks joined by a few bridge edges; returns (graph, labels)."""
    rng = np.random.default_rng(seed)
    n = n_blocks * size
    src, dst = [], []
    for b in range(n_blocks):
        base = b * size
        k = 3 * size
        src.append(rng.integers(0, size, k) + base)
        dst.append(rng.integers(0, size, k) + base)
        chain = np.arange(base, base + size - 1)
        src.append(chain)
        dst.append(chain + 1)
    for b in range(n_blocks):
        nxt = (b + 1) % n_blocks
        for j in range(bridges):
            src.append(np.array([b * size + j]))
            dst.append(np.array([nxt * size + j]))
    g = Graph(np.concatenate(src), np.concatenate(dst), n, directed=False,
              name="planted-blocks")
    labels = np.repeat(np.arange(n_blocks), size)
    return g, labels


def components(n: int, edges: set) -> np.ndarray:
    """Connected-component labels via union-find."""
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    roots = [find(v) for v in range(n)]
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def girvan_newman(graph: Graph, target_communities: int, *, verbose=True):
    """Remove max-edge-BC edges until the graph splits enough."""
    live = {(int(min(u, v)), int(max(u, v))) for u, v in zip(graph.src, graph.dst)}
    n = graph.n
    removed = []
    while True:
        labels = components(n, live)
        k = labels.max() + 1
        if k >= target_communities:
            return labels, removed
        sub = Graph(
            np.array([e[0] for e in live]), np.array([e[1] for e in live]),
            n, directed=False,
        )
        res = edge_betweenness(sub)
        u, v, score = res.top(1)[0]
        edge = (min(u, v), max(u, v))
        live.discard(edge)
        removed.append((edge, score))
        if verbose:
            print(f"  cut edge {edge} (edge BC {score:.1f}) -> "
                  f"{components(n, live).max() + 1} components")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=3)
    parser.add_argument("--size", type=int, default=24)
    args = parser.parse_args()

    graph, truth = planted_blocks(args.blocks, args.size)
    print(f"network: {graph} with {args.blocks} planted communities")
    labels, removed = girvan_newman(graph, args.blocks)

    # compare partitions up to relabelling: every block maps to one label
    ok = all(len(set(labels[truth == b])) == 1 for b in range(args.blocks))
    print(f"\nremoved {len(removed)} bridge edges; "
          f"planted communities recovered exactly: {ok}")
    if not ok:
        raise SystemExit("community recovery failed")


if __name__ == "__main__":
    main()
